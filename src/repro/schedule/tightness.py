"""Corpus-wide tightness audit: is the lower bound attained?

For every kernel the analysis derives a lower bound *and* (Section 4.5) the
tiling that should attain it.  This module closes the sandwich empirically:
derive the blocked schedule, replay its access stream through the streaming
I/O simulator, and compare against the certified lower bound -- the max
over every registered bound engine (:mod:`repro.bounds`: the evaluated
KKT bound plus the spectral and DAG-visit engines on the concrete CDAG):

    gap  =  simulated I/O (certified upper bound)  /  certified lower bound

A gap near 1 means the bound is tight *and* the constructive tiling is
real; the per-kernel classification (``attained`` / ``near`` / ``loose``)
summarizes it for the whole Table 2 corpus.  Small concrete instances carry
constant-factor slop (leading-order truncation, cold misses, tile rounding),
so the thresholds are deliberately generous; the trend with growing ``S``
and problem size is the signal.

The sweep itself is embarrassingly parallel: every (kernel, params, S)
point is an independent replay.  ``audit_corpus(jobs=N)`` runs it in two
phases over one process pool (``repro tightness --jobs``, the
``/tightness`` service endpoint, and ``benchmarks/bench_tightness.py`` all
thread it through).  Phase A fans *kernels* out: each worker builds the
CDAG, the baseline and derived-schedule streams, and their next-use arrays
exactly once, then **publishes** the streams to shared memory
(:mod:`repro.schedule.shared_streams`) keyed by stream signature.  Phase B
fans the (kernel, S) *points* out: workers attach zero-copy read-only
views of the published streams (cached per process) and replay -- no
worker ever rebuilds a stream another worker already built.  The driver
assembles rows from the replay costs, so parallel output is exactly the
serial sweep's, row for row.  ``chunk_size`` bounds the replay slab (and
next-use chunk) so even huge streams replay in O(chunk) extra memory.
"""

from __future__ import annotations

import functools
import itertools
import threading
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.cdag.cache import cached_cdag
from repro.obs import attach, trace_context
from repro.obs import span as obs_span
from repro.schedule import shared_streams
from repro.schedule.derive import blocked_order, derive_schedule
from repro.schedule.simulator import simulate_io
from repro.schedule.stream import stream_from_graph
from repro.util.errors import SoapError

#: gap thresholds for the classification buckets
ATTAINED_MAX = 2.5
NEAR_MAX = 10.0

#: default fast-memory sizes swept per kernel (clamped per-graph feasibility)
DEFAULT_S_VALUES = (8, 18)

#: vertex budget: kernels are audited on instances at most this large
#: (lenet5's fixed channel dimensions force ~90k vertices at minimum size)
DEFAULT_MAX_VERTICES = 120_000

#: default value for every size parameter, unless overridden below
DEFAULT_BASE = 8

#: per-kernel parameter overrides keeping concrete CDAGs tractable (time
#: loops short, deep nests narrow) -- audit instances, not benchmarks
PARAM_OVERRIDES: dict[str, dict[str, int]] = {
    "jacobi1d": {"T": 4},
    "jacobi2d": {"T": 4},
    "seidel2d": {"T": 4},
    "heat3d": {"T": 3, "N": 7},
    "fdtd2d": {"T": 3},
    "adi": {"T": 3},
    "doitgen": {"NR": 6, "NQ": 6, "NP": 6},
    "softmax": {"B": 2, "H": 2, "M": 8, "N": 8},
    "mlp": {"N": 4, "inp": 6, "fc1": 6, "fc2": 6, "out": 4},
    "conv": {"B": 2, "Cin": 3, "Cout": 3, "Hker": 2, "Wker": 2, "Hout": 5, "Wout": 5},
    "conv-unit-stride": {
        "B": 2, "Cin": 3, "Cout": 3, "Hker": 2, "Wker": 2, "Hout": 5, "Wout": 5,
    },
    "lenet5": {"N": 1, "C": 1, "H": 8, "W": 8},
    "bert-encoder": {"B": 1, "H": 4, "L": 6, "P": 4},
    "bert-ffn": {"B": 1, "H": 4, "L": 6, "P": 4},
    "lulesh": {"numElem": 8},
    "horizontal-diffusion": {"I": 6, "J": 6, "K": 4},
    "vertical-advection": {"I": 6, "J": 6, "K": 4},
}


def classify_gap(gap: float) -> str:
    """Bucket a gap: ``attained`` / ``near`` / ``loose``."""
    if gap <= ATTAINED_MAX:
        return "attained"
    if gap <= NEAR_MAX:
        return "near"
    return "loose"


def audit_params(name: str, program) -> dict[str, int]:
    """Concrete audit parameters for a kernel: base value + overrides."""
    import sympy as sp

    symbols: set[str] = set()
    for st in program.statements:
        for _, extent in st.domain.extents:
            symbols.update(s.name for s in sp.sympify(extent).free_symbols)
    params = {sym: DEFAULT_BASE for sym in sorted(symbols)}
    params.update(PARAM_OVERRIDES.get(name, {}))
    return params


@dataclass(frozen=True)
class TightnessRow:
    """One (kernel, S) audit point."""

    kernel: str
    category: str
    params: dict[str, int]
    s: int  #: fast-memory size actually used (feasibility-clamped)
    s_requested: int
    n_vertices: int
    bound_value: float  #: certified max over all evaluated bound engines
    schedule_cost: int  #: simulated I/O of the derived blocked schedule
    program_order_cost: int  #: simulated I/O of plain program order
    gap: float  #: schedule_cost / bound_value
    gap_program_order: float
    classification: str
    tiled: bool
    tile_sizes: dict[str, int] = field(default_factory=dict)
    notes: tuple[str, ...] = ()
    error: str | None = None
    #: per-engine bound values behind the certified max (nan = engine failed)
    engine_bounds: dict[str, float] = field(default_factory=dict)
    winning_engine: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def as_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "category": self.category,
            "params": dict(self.params),
            "s": self.s,
            "s_requested": self.s_requested,
            "n_vertices": self.n_vertices,
            "bound": self.bound_value,
            "schedule_cost": self.schedule_cost,
            "program_order_cost": self.program_order_cost,
            "gap": self.gap,
            "gap_program_order": self.gap_program_order,
            "classification": self.classification,
            "tiled": self.tiled,
            "tile_sizes": dict(self.tile_sizes),
            "notes": list(self.notes),
            "error": self.error,
            "engine_bounds": dict(self.engine_bounds),
            "winning_engine": self.winning_engine,
        }


@dataclass
class TightnessReport:
    """Audit outcome over a kernel selection."""

    rows: list[TightnessRow]
    s_values: tuple[int, ...]
    elapsed_seconds: float = 0.0

    @property
    def kernels(self) -> list[str]:
        seen: dict[str, None] = {}
        for row in self.rows:
            seen.setdefault(row.kernel)
        return list(seen)

    def summary(self) -> dict:
        ok = [r for r in self.rows if r.ok]
        buckets: dict[str, int] = {"attained": 0, "near": 0, "loose": 0}
        best: dict[str, TightnessRow] = {}
        for row in ok:
            current = best.get(row.kernel)
            if current is None or row.gap < current.gap:
                best[row.kernel] = row
        for row in best.values():
            buckets[row.classification] += 1
        failed = [r.kernel for r in self.rows if not r.ok]
        return {
            "kernels": len(self.kernels),
            "rows": len(self.rows),
            "audited": len(best),
            "attained": buckets["attained"],
            "near": buckets["near"],
            "loose": buckets["loose"],
            "failed": sorted(set(failed)),
            "finite_gaps": all(
                r.gap == r.gap and r.gap != float("inf") for r in ok
            ),
        }


def _error_row(name: str, category: str, params, s: int, message: str) -> TightnessRow:
    return TightnessRow(
        kernel=name,
        category=category,
        params=dict(params or {}),
        s=s,
        s_requested=s,
        n_vertices=0,
        bound_value=float("nan"),
        schedule_cost=0,
        program_order_cost=0,
        gap=float("nan"),
        gap_program_order=float("nan"),
        classification="error",
        tiled=False,
        error=message,
    )


@dataclass
class _KernelContext:
    """Everything one kernel instance shares across its S-sweep points.

    Built once per (kernel, params) -- in-process for serial sweeps, once
    per worker process for parallel ones -- and memoized so every further S
    point reuses the CDAG, the program-order baseline stream (whose next-use
    table is itself memoized on the stream), and any derived-schedule stream
    already built for the same tile sizes.
    """

    category: str
    program: object = None
    cdag: object = None
    baseline_stream: object = None
    min_s: int = 1
    max_indegree: int = 0
    #: derived-schedule streams keyed by (tiled, variable order, tile sizes)
    stream_cache: dict = field(default_factory=dict)
    error: str | None = None
    #: clamped sizes already audited in the current sweep (see _SWEEP_TOKENS)
    sweep_token: int = -1
    audited_s: set = field(default_factory=set)


#: size-1 per-process-per-thread memo: points arrive kernel-major, so one
#: slot suffices (and bounds worker memory at a single concrete CDAG).
#: Thread-local because the service daemon runs concurrent audit jobs on a
#: shared worker pool -- a module-global slot would race across jobs.
_CTX = threading.local()

#: one token per sweep, threaded through the point tasks so a worker can
#: tell "duplicate clamped S within this sweep" (skip cheaply) apart from
#: "same kernel audited again by a later sweep" (recompute)
_SWEEP_TOKENS = itertools.count()


@functools.lru_cache(maxsize=16)
def _built_program(name: str):
    """Registered kernels build immutable IR; share one instance per name
    between the driver's audit-default resolution and the audit contexts."""
    from repro.kernels import get_kernel

    return get_kernel(name).build()


def _kernel_context(
    name: str, params: Mapping[str, int], max_vertices: int
) -> _KernelContext:
    from repro.kernels import get_kernel

    key = (name, tuple(sorted(params.items())), int(max_vertices))
    if getattr(_CTX, "key", None) == key:
        return _CTX.val
    spec = get_kernel(name)
    ctx = _KernelContext(category=spec.category)
    try:
        program = _built_program(name)
        cdag = cached_cdag(name, params, program=program)
    except SoapError as err:
        ctx.error = f"CDAG build failed: {err}"
    else:
        if cdag.n_vertices > max_vertices:
            ctx.error = (
                f"instance too large: {cdag.n_vertices} > "
                f"{max_vertices} vertices"
            )
        else:
            ctx.program = program
            ctx.cdag = cdag
            # Feasibility floor: a vertex's operands plus itself must fit.
            ctx.max_indegree = max(
                (cdag.graph.in_degree(v) for v in cdag.graph.nodes), default=0
            )
            ctx.min_s = ctx.max_indegree + 2
            ctx.baseline_stream = stream_from_graph(cdag.graph)
    _CTX.key, _CTX.val = key, ctx
    return ctx


def _certified_bounds(
    graph, name, params, s, bound, engines
) -> tuple[dict[str, float], float, str | None]:
    """Every applicable bound engine at one point: values, max, winner.

    The same call serves the serial and the parallel sweep so their rows
    stay bit-identical.  The certified value is the gap denominator; the
    raw KKT value stays visible in the per-engine dict.
    """
    from repro.bounds import evaluate_bounds

    combined = evaluate_bounds(
        s=s,
        graph=graph,
        symbolic_bound=bound,
        params=params,
        kernel=name,
        engines=engines,
    )
    return combined.engine_values(), combined.certified, combined.winning_engine


def _audit_point(task: tuple) -> tuple[bool, TightnessRow | None]:
    """One (kernel, params, S) audit point -- the serial sweep's unit of work.

    Returns ``(dedupable, row)``: rows that went through feasibility
    clamping carry ``dedupable=True`` so the driver can collapse requested
    sizes that clamp to the same S, exactly like the serial sweep did.
    A ``None`` row is a duplicate clamped size already audited by this
    worker in this sweep, skipped before any replay work.
    """
    with obs_span(
        "tightness.point", kernel=task[0], s_requested=int(task[2])
    ):
        return _audit_point_body(task)


def _audit_point_body(task: tuple) -> tuple[bool, TightnessRow | None]:
    (name, params, s_requested, max_vertices, bound, program_bound, token,
     chunk_size, bounds_engines) = task
    ctx = _kernel_context(name, params, max_vertices)
    if ctx.error is not None:
        return False, _error_row(
            name, ctx.category, params, int(s_requested), ctx.error
        )
    s = max(int(s_requested), ctx.min_s)
    if ctx.sweep_token != token:
        ctx.sweep_token = token
        ctx.audited_s = set()
    if s in ctx.audited_s:
        return True, None  # clamping collapsed two requested sizes
    ctx.audited_s.add(s)
    notes: list[str] = []
    if s != s_requested:
        notes.append(f"S clamped to {s} (max in-degree {ctx.max_indegree})")
    try:
        engine_bounds, bound_value, winning_engine = _certified_bounds(
            ctx.cdag.graph, name, params, s, bound, bounds_engines
        )
        schedule = derive_schedule(ctx.program, program_bound, params, s)
        stream_key = (
            schedule.tiled,
            tuple(schedule.variable_order),
            tuple(sorted(schedule.tile_sizes.items())),
        )
        stream = ctx.stream_cache.get(stream_key)
        if stream is None:
            order = blocked_order(ctx.cdag, schedule)
            stream = stream_from_graph(ctx.cdag.graph, order)
            ctx.stream_cache[stream_key] = stream
        schedule_cost = simulate_io(stream, s, slab_positions=chunk_size).cost
        program_order_cost = simulate_io(
            ctx.baseline_stream, s, slab_positions=chunk_size
        ).cost
    except SoapError as err:
        return True, _error_row(name, ctx.category, params, s, str(err))
    if not bound_value > 0:
        return True, _error_row(
            name, ctx.category, params, s,
            f"bound evaluates to {bound_value}; gap undefined",
        )
    gap = schedule_cost / bound_value
    if gap < 1.0:
        # Legal: the leading-order bound need not bind on tiny instances
        # (e.g. the whole working set fits in S, or the truncated
        # lower-order terms dominate).  Flag it rather than hiding it.
        notes.append(
            "gap < 1: instance too small for the leading-order bound to bind"
        )
    return True, TightnessRow(
        kernel=name,
        category=ctx.category,
        params=dict(params),
        s=s,
        s_requested=int(s_requested),
        n_vertices=ctx.cdag.n_vertices,
        bound_value=bound_value,
        schedule_cost=schedule_cost,
        program_order_cost=program_order_cost,
        gap=gap,
        gap_program_order=program_order_cost / bound_value,
        classification=classify_gap(gap),
        tiled=schedule.tiled,
        tile_sizes=dict(schedule.tile_sizes),
        notes=tuple(notes) + schedule.notes,
        engine_bounds=engine_bounds,
        winning_engine=winning_engine,
    )


def _collapse_clamped(
    outcomes: Sequence[tuple[bool, TightnessRow | None]]
) -> list[TightnessRow]:
    """Drop repeated clamped sizes of one kernel sweep (first row wins).

    Workers skip duplicates they can see themselves (``None`` rows); this
    driver-side pass also covers duplicates split across workers.
    """
    rows: list[TightnessRow] = []
    audited_s: set[int] = set()
    for dedupable, row in outcomes:
        if row is None:
            continue
        if dedupable:
            if row.s in audited_s:
                continue
            audited_s.add(row.s)
        rows.append(row)
    return rows


def _merged_params(
    name: str, program, params: Mapping[str, int] | None
) -> dict[str, int]:
    """Audit defaults merged with caller overrides (unknown names dropped)."""
    defaults = audit_params(name, program)
    if params:
        # Overrides merge over the audit defaults; names the program does not
        # use are dropped (one global --params can serve a whole selection).
        defaults.update(
            {k: int(v) for k, v in params.items() if k in defaults}
        )
    return defaults


def audit_kernel(
    name: str,
    *,
    result=None,
    params: Mapping[str, int] | None = None,
    s_values: Sequence[int] = DEFAULT_S_VALUES,
    max_vertices: int = DEFAULT_MAX_VERTICES,
    chunk_size: int | None = None,
    bounds_engines: Sequence[str] | None = None,
) -> list[TightnessRow]:
    """Audit one kernel: one row per fast-memory size.

    ``result`` takes a precomputed :class:`~repro.analysis.KernelResult`
    (the batch driver shares one engine); otherwise the kernel is analyzed
    on the spot.  ``chunk_size`` bounds the replay slab.
    ``bounds_engines`` selects the lower-bound engines behind the
    certified gap denominator (default: all registered).
    """
    from repro.analysis import analyze_kernel

    chunk_size = _checked_chunk_size(chunk_size)
    bounds_engines = _checked_bounds_engines(bounds_engines)
    merged = _merged_params(name, _built_program(name), params)
    if result is None:
        result = analyze_kernel(name)
    token = next(_SWEEP_TOKENS)
    try:
        outcomes = [
            _audit_point(
                (name, merged, int(s), int(max_vertices),
                 result.bound, result.program_bound, token, chunk_size,
                 bounds_engines)
            )
            for s in s_values
        ]
    finally:
        _reset_context()
    return _collapse_clamped(outcomes)


def _checked_chunk_size(chunk_size) -> int | None:
    if chunk_size is None:
        return None
    chunk_size = int(chunk_size)
    if chunk_size < 1:
        raise ValueError(
            f"chunk size must be a positive integer (got {chunk_size})"
        )
    return chunk_size


def _checked_bounds_engines(engines) -> tuple[str, ...] | None:
    """Validate an engine selection up front (typos fail the whole sweep
    immediately, not once per point inside a worker)."""
    if engines is None:
        return None
    from repro.bounds import get_bound_engine

    engines = tuple(str(name) for name in engines)
    for name in engines:
        get_bound_engine(name)
    return engines


def _reset_context() -> None:
    """Drop the thread's kernel-context memo at sweep end.

    Long-lived daemon worker threads would otherwise retain the last
    kernel's CDAG and stream cache (tens of MB) indefinitely.  Pool workers
    do not need this: their processes exit with the sweep.
    """
    _CTX.key = _CTX.val = None


def audit_corpus(
    names: Sequence[str] | None = None,
    *,
    s_values: Sequence[int] = DEFAULT_S_VALUES,
    params_overrides: Mapping[str, Mapping[str, int]] | None = None,
    params: Mapping[str, int] | None = None,
    jobs: int = 1,
    cache_dir: str | None = None,
    engine=None,
    solver: str | None = None,
    max_vertices: int = DEFAULT_MAX_VERTICES,
    chunk_size: int | None = None,
    bounds_engines: Sequence[str] | None = None,
) -> TightnessReport:
    """Audit a kernel selection (default: the full Table 2 corpus).

    ``params`` overrides apply to every kernel (unused names are ignored);
    ``params_overrides`` adds per-kernel overrides on top.  ``engine``
    shares a live engine (and its solve cache) with the caller -- the
    service daemon's audit endpoint uses this.  ``jobs > 1`` parallelizes
    the analysis batch *and* the replay sweep, the latter in two phases
    over one pool: kernels prepare-and-publish, then points attach-and-
    replay (see the module docstring).  ``chunk_size`` bounds the replay
    slab and next-use chunk, trading time for peak memory -- results are
    bit-identical whatever its value.  ``bounds_engines`` restricts the
    lower-bound engines behind the certified gap denominator (default:
    all registered engines; ``("kkt",)`` reproduces the KKT-only audit).
    """
    import time

    from repro.engine import analyze_many
    from repro.kernels import kernel_names

    started = time.perf_counter()
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be a positive integer (got {jobs})")
    chunk_size = _checked_chunk_size(chunk_size)
    bounds_engines = _checked_bounds_engines(bounds_engines)
    s_values = tuple(int(s) for s in s_values)
    selected = list(names) if names is not None else kernel_names()
    with obs_span("tightness.audit", jobs=jobs) as sweep_span:
        sweep_span.add("kernels", len(selected))
        results = analyze_many(
            selected, jobs=jobs, cache_dir=cache_dir, engine=engine,
            solver=solver,
        )
        token = next(_SWEEP_TOKENS)
        kernel_specs: list[tuple] = []
        tasks: list[tuple] = []
        for name, result in zip(selected, results):
            overrides: dict[str, int] = dict(params or {})
            if params_overrides and name in params_overrides:
                overrides.update(params_overrides[name])
            merged = _merged_params(name, _built_program(name), overrides)
            kernel_specs.append(
                (name, merged, result.bound, result.program_bound)
            )
            tasks.extend(
                (name, merged, s, int(max_vertices),
                 result.bound, result.program_bound, token, chunk_size,
                 bounds_engines)
                for s in s_values
            )

        per_kernel = max(1, len(s_values))
        if jobs > 1 and len(tasks) > 1:
            outcomes = _shared_sweep(
                kernel_specs,
                s_values=s_values,
                jobs=jobs,
                max_vertices=int(max_vertices),
                chunk_size=chunk_size,
                bounds_engines=bounds_engines,
            )
        else:
            try:
                outcomes = [_audit_point(task) for task in tasks]
            finally:
                _reset_context()

        rows: list[TightnessRow] = []
        for start in range(0, len(outcomes), per_kernel):
            rows.extend(_collapse_clamped(outcomes[start:start + per_kernel]))
        sweep_span.add("rows", len(rows))
        return TightnessReport(
            rows=rows,
            s_values=s_values,
            elapsed_seconds=time.perf_counter() - started,
        )


# ---------------------------------------------------------------------------
# Two-phase zero-copy parallel sweep
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _PreparedPoint:
    """One (kernel, S) point after phase A, before replay."""

    kind: str  #: "skip" (duplicate clamped S) | "error" | "replay"
    s: int = 0
    s_requested: int = 0
    message: str = ""
    notes: tuple = ()
    bound_value: float = 0.0
    tiled: bool = False
    tile_sizes: tuple = ()
    schedule_notes: tuple = ()
    schedule_ref: object = None
    baseline_ref: object = None
    #: per-engine bound values as (engine, value) pairs (picklable, ordered)
    engine_bounds: tuple = ()
    winning_engine: str | None = None


@dataclass
class _PreparedKernel:
    """Phase-A output for one kernel: published streams + point plans."""

    name: str
    category: str
    params: dict
    n_vertices: int = 0
    error: str | None = None  #: kernel-level error (CDAG build / too large)
    points: list = field(default_factory=list)
    refs: list = field(default_factory=list)  #: segments the driver unlinks


def _prepare_kernel(task: tuple) -> _PreparedKernel:
    """Phase A, one kernel: build once, publish, plan every sweep point.

    Mirrors :func:`_audit_point`'s decisions exactly (clamping, duplicate
    skipping, error capture, note text) so the driver can assemble rows
    identical to the serial sweep's.  Streams and their next-use arrays are
    built here -- once, total -- and published; phase B only ever attaches.
    """
    (name, params, s_values, max_vertices, bound, program_bound,
     bounds_engines, tctx) = task
    with attach(tctx), obs_span("tightness.prepare", kernel=name):
        return _prepare_kernel_body(
            name, params, s_values, max_vertices, bound, program_bound,
            bounds_engines,
        )


def _prepare_kernel_body(
    name, params, s_values, max_vertices, bound, program_bound, bounds_engines
) -> _PreparedKernel:
    ctx = _kernel_context(name, params, max_vertices)
    prep = _PreparedKernel(
        name=name, category=ctx.category, params=dict(params)
    )
    if ctx.error is not None:
        prep.error = ctx.error
        return prep
    prep.n_vertices = ctx.cdag.n_vertices
    param_key = tuple(sorted(params.items()))
    published: dict = {}
    baseline_ref = None
    audited: set[int] = set()
    for s_requested in s_values:
        s = max(int(s_requested), ctx.min_s)
        if s in audited:
            prep.points.append(_PreparedPoint(kind="skip"))
            continue
        audited.add(s)
        notes: list[str] = []
        if s != s_requested:
            notes.append(
                f"S clamped to {s} (max in-degree {ctx.max_indegree})"
            )
        try:
            engine_bounds, bound_value, winning_engine = _certified_bounds(
                ctx.cdag.graph, name, params, s, bound, bounds_engines
            )
            schedule = derive_schedule(ctx.program, program_bound, params, s)
            stream_key = (
                schedule.tiled,
                tuple(schedule.variable_order),
                tuple(sorted(schedule.tile_sizes.items())),
            )
            schedule_ref = published.get(stream_key)
            if schedule_ref is None:
                stream = ctx.stream_cache.get(stream_key)
                if stream is None:
                    order = blocked_order(ctx.cdag, schedule)
                    stream = stream_from_graph(ctx.cdag.graph, order)
                    ctx.stream_cache[stream_key] = stream
                schedule_ref = shared_streams.publish(
                    stream,
                    shared_streams.stream_signature(
                        name, param_key, "schedule", stream_key
                    ),
                )
                published[stream_key] = schedule_ref
                prep.refs.append(schedule_ref)
            if baseline_ref is None:
                baseline_ref = shared_streams.publish(
                    ctx.baseline_stream,
                    shared_streams.stream_signature(
                        name, param_key, "baseline"
                    ),
                )
                prep.refs.append(baseline_ref)
        except SoapError as err:
            prep.points.append(
                _PreparedPoint(
                    kind="error", s=s, s_requested=int(s_requested),
                    message=str(err),
                )
            )
            continue
        prep.points.append(
            _PreparedPoint(
                kind="replay",
                s=s,
                s_requested=int(s_requested),
                notes=tuple(notes),
                bound_value=bound_value,
                tiled=schedule.tiled,
                tile_sizes=tuple(sorted(schedule.tile_sizes.items())),
                schedule_notes=tuple(schedule.notes),
                schedule_ref=schedule_ref,
                baseline_ref=baseline_ref,
                engine_bounds=tuple(engine_bounds.items()),
                winning_engine=winning_engine,
            )
        )
    return prep


def _replay_shared(task: tuple) -> tuple:
    """Phase B, one point: attach published streams (cached) and replay.

    No stream construction happens here, by design -- the function only
    knows segment refs, so a worker cannot rebuild even by accident.
    """
    schedule_ref, baseline_ref, s, chunk_size, kernel, tctx = task
    with attach(tctx), obs_span(
        "tightness.replay-point", kernel=kernel, s=int(s)
    ):
        try:
            stream = shared_streams.attach_cached(schedule_ref)
            baseline = shared_streams.attach_cached(baseline_ref)
            schedule_cost = simulate_io(
                stream, s, slab_positions=chunk_size
            ).cost
            program_order_cost = simulate_io(
                baseline, s, slab_positions=chunk_size
            ).cost
        except SoapError as err:
            return ("error", str(err))
        except (FileNotFoundError, ValueError, OSError) as err:
            # A vanished or undersized segment (publisher died, orphan
            # sweep raced us) degrades this point to a typed error row;
            # it must never take the whole sweep down.
            return (
                "error",
                f"shared segment unavailable ({type(err).__name__}: {err})",
            )
        return ("ok", schedule_cost, program_order_cost)


def _shared_sweep(
    kernel_specs: list[tuple],
    *,
    s_values: tuple[int, ...],
    jobs: int,
    max_vertices: int,
    chunk_size: int | None,
    bounds_engines: tuple[str, ...] | None,
) -> list[tuple[bool, TightnessRow | None]]:
    """The parallel sweep: prepare-and-publish, then attach-and-replay.

    Both phases run on one process pool, order-preserving.  From the main
    thread, forked workers inherit the warm interpreter state (kernel
    registry, sympy caches); off the main thread -- the service daemon runs
    audits on a thread pool -- forking a multithreaded process can inherit
    held locks into the child and deadlock, so workers are spawned fresh
    instead (tasks and refs are plain picklable data either way).  Shared
    segments outlive the phase-A workers that created them; the driver
    unlinks every segment on the way out, success or not.
    """
    import multiprocessing
    import os
    from concurrent.futures import ProcessPoolExecutor

    on_main = threading.current_thread() is threading.main_thread()
    try:
        mp_context = multiprocessing.get_context("fork" if on_main else "spawn")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        mp_context = multiprocessing.get_context()
    # cap at the core count: the points are CPU-bound, and the service
    # endpoint forwards caller-supplied jobs values -- one request must not
    # be able to spawn a worker per sweep point on a large corpus
    n_points = len(kernel_specs) * max(1, len(s_values))
    workers = max(1, min(int(jobs), n_points, os.cpu_count() or 1))
    tctx = trace_context()  # workers stitch under the driver's sweep span
    prep_tasks = [
        (name, params, s_values, max_vertices, bound, program_bound,
         bounds_engines, tctx)
        for name, params, bound, program_bound in kernel_specs
    ]
    refs: list = []
    try:
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=mp_context
        ) as pool:
            preps = list(pool.map(_prepare_kernel, prep_tasks, chunksize=1))
            replay_tasks = []
            slots = []
            for ki, prep in enumerate(preps):
                refs.extend(prep.refs)
                for pi, point in enumerate(prep.points):
                    if point.kind == "replay":
                        replay_tasks.append(
                            (point.schedule_ref, point.baseline_ref,
                             point.s, chunk_size, prep.name, tctx)
                        )
                        slots.append((ki, pi))
            replays = (
                list(
                    pool.map(
                        _replay_shared,
                        replay_tasks,
                        chunksize=max(1, len(s_values)),
                    )
                )
                if replay_tasks
                else []
            )
        return _assemble_outcomes(preps, replays, slots, s_values)
    finally:
        for ref in refs:
            shared_streams.unlink(ref)


def _assemble_outcomes(
    preps: list[_PreparedKernel],
    replays: list[tuple],
    slots: list[tuple[int, int]],
    s_values: tuple[int, ...],
) -> list[tuple[bool, TightnessRow | None]]:
    """Rows from phase-A plans + phase-B costs, serial-identical."""
    outcomes: list[tuple[bool, TightnessRow | None]] = []
    replay_by_slot = dict(zip(slots, replays))
    for ki, prep in enumerate(preps):
        if prep.error is not None:
            outcomes.extend(
                (False, _error_row(
                    prep.name, prep.category, prep.params,
                    int(s_requested), prep.error,
                ))
                for s_requested in s_values
            )
            continue
        for pi, point in enumerate(prep.points):
            if point.kind == "skip":
                outcomes.append((True, None))
                continue
            if point.kind == "error":
                outcomes.append((True, _error_row(
                    prep.name, prep.category, prep.params, point.s,
                    point.message,
                )))
                continue
            replay = replay_by_slot[(ki, pi)]
            if replay[0] == "error":
                outcomes.append((True, _error_row(
                    prep.name, prep.category, prep.params, point.s,
                    replay[1],
                )))
                continue
            _, schedule_cost, program_order_cost = replay
            if not point.bound_value > 0:
                outcomes.append((True, _error_row(
                    prep.name, prep.category, prep.params, point.s,
                    f"bound evaluates to {point.bound_value}; gap undefined",
                )))
                continue
            gap = schedule_cost / point.bound_value
            notes = list(point.notes)
            if gap < 1.0:
                notes.append(
                    "gap < 1: instance too small for the leading-order "
                    "bound to bind"
                )
            outcomes.append((True, TightnessRow(
                kernel=prep.name,
                category=prep.category,
                params=dict(prep.params),
                s=point.s,
                s_requested=point.s_requested,
                n_vertices=prep.n_vertices,
                bound_value=point.bound_value,
                schedule_cost=schedule_cost,
                program_order_cost=program_order_cost,
                gap=gap,
                gap_program_order=program_order_cost / point.bound_value,
                classification=classify_gap(gap),
                tiled=point.tiled,
                tile_sizes=dict(point.tile_sizes),
                notes=tuple(notes) + point.schedule_notes,
                engine_bounds=dict(point.engine_bounds),
                winning_engine=point.winning_engine,
            )))
    return outcomes
