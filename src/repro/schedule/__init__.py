"""Schedule synthesis and scalable I/O replay (the upper-bound half).

The analysis pipeline is constructive (paper Section 4.5): substituting
``X0`` into the tile closed forms yields the loop tiling of the maximal
subcomputation.  This package turns that tiling into something executable
and measures it:

* :mod:`repro.schedule.derive` -- a generic :class:`TiledSchedule` for any
  analyzed program, built from ``opt/tiling`` tile closed forms plus the
  iteration points recorded on the concrete CDAG (no per-kernel hand-coded
  vertex-to-point mapping);
* :mod:`repro.schedule.stream` -- flat :class:`AccessStream` encodings of a
  schedule's memory traffic, built from a CDAG or streamed directly from the
  IR for million-vertex instances;
* :mod:`repro.schedule.simulator` -- a streaming I/O replay simulator
  (Belady / LRU eviction over precomputed next-use indices) that reproduces
  :func:`repro.pebbling.greedy.greedy_pebbling_cost` bit-for-bit while
  scaling orders of magnitude further;
* :mod:`repro.schedule.tightness` -- the corpus-wide tightness audit:
  simulated I/O of the derived schedule vs. the evaluated lower bound,
  reported as a gap per kernel and fast-memory size.
"""

from repro.schedule.derive import TiledSchedule, blocked_order, derive_schedule
from repro.schedule.simulator import SimulationResult, simulate_io
from repro.schedule.stream import (
    AccessStream,
    single_statement_stream,
    stream_from_graph,
)
from repro.schedule.tightness import (
    TightnessReport,
    TightnessRow,
    audit_corpus,
    audit_kernel,
)

__all__ = [
    "TiledSchedule",
    "derive_schedule",
    "blocked_order",
    "AccessStream",
    "stream_from_graph",
    "single_statement_stream",
    "SimulationResult",
    "simulate_io",
    "TightnessRow",
    "TightnessReport",
    "audit_kernel",
    "audit_corpus",
]
