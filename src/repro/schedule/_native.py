"""Optional native replay core: the simulator's hot loop as compiled C.

The pure-Python replay loop (:func:`repro.schedule.simulator._replay`) is
the reference implementation and permanent fallback; this module compiles
the *same algorithm* -- same heaps, same snapshot-staleness rule, same
deferred dead-marking, same tie-breaks -- to a small shared object with the
system C compiler and drives it through :mod:`ctypes`.  Nothing is
installed: the source is embedded here, built once into a user cache
directory (keyed by a hash of the source, so edits rebuild automatically),
and every failure mode (no compiler, sandboxed filesystem, exotic
platform) silently degrades to the Python loop.  Equivalence tests pin
both backends against :func:`repro.pebbling.greedy.greedy_pebbling_cost`.

Set ``REPRO_NO_NATIVE_REPLAY=1`` to force the pure-Python path (used by the
differential tests and benchmark A/B runs).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

_SOURCE = r"""
#include <stdlib.h>
#include <string.h>

typedef long long i64;

typedef struct { i64 *a; i64 len, cap; } heap_t;

static int hpush(heap_t *h, i64 v) {
    if (h->len == h->cap) {
        i64 ncap = h->cap ? h->cap * 2 : 1024;
        i64 *na = (i64 *)realloc(h->a, (size_t)ncap * sizeof(i64));
        if (!na) return -1;
        h->a = na; h->cap = ncap;
    }
    i64 i = h->len++;
    while (i > 0) {
        i64 p = (i - 1) >> 1;
        if (h->a[p] <= v) break;
        h->a[i] = h->a[p]; i = p;
    }
    h->a[i] = v;
    return 0;
}

/* Bottom-up O(n) heapify, used after stale-snapshot compaction. */
static void hheapify(heap_t *h) {
    for (i64 i = h->len / 2 - 1; i >= 0; i--) {
        i64 v = h->a[i], j = i;
        for (;;) {
            i64 c = 2 * j + 1;
            if (c >= h->len) break;
            if (c + 1 < h->len && h->a[c + 1] < h->a[c]) c++;
            if (h->a[c] >= v) break;
            h->a[j] = h->a[c]; j = c;
        }
        h->a[j] = v;
    }
}

/* Keys are unique (id is mixed into every key), so pops return the same
 * sequence as CPython's heapq regardless of internal layout. */
static i64 hpop(heap_t *h) {
    i64 top = h->a[0];
    i64 last = h->a[--h->len];
    i64 i = 0;
    for (;;) {
        i64 c = 2 * i + 1;
        if (c >= h->len) break;
        if (c + 1 < h->len && h->a[c + 1] < h->a[c]) c++;
        if (h->a[c] >= last) break;
        h->a[i] = h->a[c]; i = c;
    }
    if (h->len) h->a[i] = last;
    return top;
}

typedef struct {
    i64 m, s, dead_floor;
    int belady;
    heap_t heap, dead, stash;
    i64 *current_key;
    unsigned char *blue;
    i64 loads, stores, evictions, red;
} ctx_t;

/* Shared eviction core: mirror of simulator.make_room.  The callers take
 * the Belady dead fast path first, so this only runs when the dead heap is
 * empty (and always under LRU). */
static int make_room(ctx_t *c, const i64 *protect, i64 n_protect) {
    while (c->red >= c->s) {
        i64 victim = -1, entry = 0;
        while (c->heap.len) {
            entry = hpop(&c->heap);
            i64 pid = (c->belady ? -entry : entry) % c->m;
            if (c->current_key[pid] != entry) continue;  /* stale */
            int prot = 0;
            for (i64 t = 0; t < n_protect; t++)
                if (protect[t] == pid) { prot = 1; break; }
            if (prot) {
                if (hpush(&c->stash, entry)) return -3;
                continue;
            }
            victim = pid;
            break;
        }
        while (c->stash.len)
            if (hpush(&c->heap, hpop(&c->stash))) return -3;
        if (victim < 0) return -1;
        int live = c->belady ? (entry > c->dead_floor)
                             : (int)((entry / c->m) & 1);
        if (live && !c->blue[victim]) { c->stores++; c->blue[victim] = 1; }
        c->current_key[victim] = 1;  /* NOT_RESIDENT */
        c->red--; c->evictions++;
    }
    return 0;
}

/* out: loads, stores, evictions, error id.  Returns 0 on success, -1 when
 * S is too small, -2 when a needed value is neither red nor blue, -3 on
 * allocation failure. */
int replay(i64 n_positions, i64 m, i64 s, int belady,
           const i64 *offsets, const i64 *parents, const i64 *computed,
           const unsigned char *store_at, const unsigned char *starts_blue,
           const i64 *access_keys, const i64 *compute_keys,
           i64 dead_floor, i64 *out)
{
    const i64 NOT_RES = 1, DEAD_MARK = 2;
    int rc = 0;
    ctx_t c;
    memset(&c, 0, sizeof(c));
    c.m = m; c.s = s; c.dead_floor = dead_floor; c.belady = belady;
    size_t mm = (size_t)(m > 0 ? m : 1);
    c.current_key = (i64 *)malloc(mm * sizeof(i64));
    c.blue = (unsigned char *)malloc(mm);
    i64 *dying = (i64 *)malloc(64 * sizeof(i64));
    i64 dying_len = 0, dying_cap = 64;
    if (!c.current_key || !c.blue || !dying) { rc = -3; goto done; }
    for (i64 i = 0; i < m; i++) c.current_key[i] = NOT_RES;
    if (m) memcpy(c.blue, starts_blue, (size_t)m);
    /* Mirror the Python loop's compaction: bound the lazy snapshot heap at
     * O(S) instead of O(accesses).  Removing stale entries never changes a
     * pop result (they are skipped at pop time anyway). */
    i64 heap_cap = 4 * s > 8192 ? 4 * s : 8192;

    for (i64 pos = 0; pos < n_positions; pos++) {
        i64 lo = offsets[pos], hi = offsets[pos + 1];
        for (i64 k = lo; k < hi; k++) {
            i64 pid = parents[k];
            i64 key = access_keys[k];
            if (c.current_key[pid] == NOT_RES) {
                if (!c.blue[pid]) { rc = -2; out[3] = pid; goto done; }
                c.loads++;
                if (c.red < s) c.red++;
                else if (c.dead.len) {
                    c.current_key[-hpop(&c.dead)] = NOT_RES;
                    c.evictions++;
                } else {
                    rc = make_room(&c, parents + lo, hi - lo);
                    if (rc) goto done;
                    c.red++;
                }
            }
            if (key > dead_floor) {
                c.current_key[pid] = key;
                if (hpush(&c.heap, key)) { rc = -3; goto done; }
            } else {  /* last use: deferred dead-heap push */
                c.current_key[pid] = DEAD_MARK;
                if (dying_len == dying_cap) {
                    dying_cap *= 2;
                    i64 *nd = (i64 *)realloc(dying,
                                             (size_t)dying_cap * sizeof(i64));
                    if (!nd) { rc = -3; goto done; }
                    dying = nd;
                }
                dying[dying_len++] = -pid;
            }
        }
        if (c.red < s) c.red++;
        else if (c.dead.len) {
            c.current_key[-hpop(&c.dead)] = NOT_RES;
            c.evictions++;
        } else {
            rc = make_room(&c, parents + lo, hi - lo);
            if (rc) goto done;
            c.red++;
        }
        i64 vid = computed[pos], ckey = compute_keys[pos];
        if (ckey > dead_floor) {
            c.current_key[vid] = ckey;
            if (hpush(&c.heap, ckey)) { rc = -3; goto done; }
        } else {
            c.current_key[vid] = DEAD_MARK;
            if (hpush(&c.dead, -vid)) { rc = -3; goto done; }
        }
        if (store_at[pos]) { c.blue[vid] = 1; c.stores++; }
        while (dying_len)
            if (hpush(&c.dead, dying[--dying_len])) { rc = -3; goto done; }
        if (c.heap.len > heap_cap) {
            i64 w = 0;
            for (i64 t = 0; t < c.heap.len; t++) {
                i64 e = c.heap.a[t];
                i64 pid = (belady ? -e : e) % m;
                if (c.current_key[pid] == e) c.heap.a[w++] = e;
            }
            c.heap.len = w;
            hheapify(&c.heap);
        }
    }

done:
    out[0] = c.loads; out[1] = c.stores; out[2] = c.evictions;
    free(c.current_key); free(c.blue); free(dying);
    free(c.heap.a); free(c.dead.a); free(c.stash.a);
    return rc;
}
"""

_lib: ctypes.CDLL | None | bool = None  # None = not tried, False = unavailable


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-native"


def _build() -> ctypes.CDLL | None:
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = cache / f"replay-{digest}.so"
    if not so_path.exists():
        cache.mkdir(parents=True, exist_ok=True)
        src = cache / f"replay-{digest}.c"
        src.write_text(_SOURCE)
        with tempfile.NamedTemporaryFile(
            suffix=".so", dir=cache, delete=False
        ) as tmp:
            tmp_path = Path(tmp.name)
        result = subprocess.run(
            ["cc", "-O2", "-shared", "-fPIC", "-o", str(tmp_path), str(src)],
            capture_output=True,
            timeout=120,
        )
        if result.returncode != 0:
            tmp_path.unlink(missing_ok=True)
            return None
        os.replace(tmp_path, so_path)  # atomic under concurrent builders
    lib = ctypes.CDLL(str(so_path))
    i64 = ctypes.c_longlong
    p64 = ctypes.POINTER(i64)
    pu8 = ctypes.POINTER(ctypes.c_ubyte)
    lib.replay.argtypes = [
        i64, i64, i64, ctypes.c_int,
        p64, p64, p64, pu8, pu8, p64, p64, i64, p64,
    ]
    lib.replay.restype = ctypes.c_int
    return lib


def native_replay_lib() -> ctypes.CDLL | None:
    """The compiled replay core, or ``None`` when unavailable/disabled."""
    global _lib
    if os.environ.get("REPRO_NO_NATIVE_REPLAY"):
        return None
    if _lib is None:
        try:
            _lib = _build() or False
        except Exception:
            _lib = False
    return _lib or None
