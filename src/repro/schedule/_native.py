"""Optional native replay core: the simulator's hot loop as compiled C.

The pure-Python replay loop (:func:`repro.schedule.simulator._replay`) is
the reference implementation and permanent fallback; this module compiles
the *same algorithm* -- same heaps, same snapshot-staleness rule, same
deferred dead-marking, same tie-breaks -- to a small shared object with the
system C compiler and drives it through :mod:`ctypes`.  Nothing is
installed: the source is embedded here, built once into a user cache
directory (keyed by a hash of the source, so edits rebuild automatically),
and every failure mode (no compiler, sandboxed filesystem, exotic
platform) silently degrades to the Python loop.  Equivalence tests pin
both backends against :func:`repro.pebbling.greedy.greedy_pebbling_cost`.

The core is **slab-driven**: ``replay_new`` allocates a replay context
(heaps, residency table, blue set, counters), ``replay_slab`` advances it
over one chunk of positions with slab-local arrays (offsets rebased to 0),
``replay_counts`` reads the running totals, and ``replay_free`` releases
everything.  The simulator feeds chunk-sized slabs so the C core never
needs the full stream resident -- one ctypes call per slab, state carried
in the context.  The one-shot ``replay`` export is a thin wrapper over the
same context machinery, kept for direct single-call use.

Set ``REPRO_NO_NATIVE_REPLAY=1`` to force the pure-Python path (used by the
differential tests and benchmark A/B runs).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

_SOURCE = r"""
#include <stdlib.h>
#include <string.h>

typedef long long i64;

typedef struct { i64 *a; i64 len, cap; } heap_t;

static int hpush(heap_t *h, i64 v) {
    if (h->len == h->cap) {
        i64 ncap = h->cap ? h->cap * 2 : 1024;
        i64 *na = (i64 *)realloc(h->a, (size_t)ncap * sizeof(i64));
        if (!na) return -1;
        h->a = na; h->cap = ncap;
    }
    i64 i = h->len++;
    while (i > 0) {
        i64 p = (i - 1) >> 1;
        if (h->a[p] <= v) break;
        h->a[i] = h->a[p]; i = p;
    }
    h->a[i] = v;
    return 0;
}

/* Bottom-up O(n) heapify, used after stale-snapshot compaction. */
static void hheapify(heap_t *h) {
    for (i64 i = h->len / 2 - 1; i >= 0; i--) {
        i64 v = h->a[i], j = i;
        for (;;) {
            i64 c = 2 * j + 1;
            if (c >= h->len) break;
            if (c + 1 < h->len && h->a[c + 1] < h->a[c]) c++;
            if (h->a[c] >= v) break;
            h->a[j] = h->a[c]; j = c;
        }
        h->a[j] = v;
    }
}

/* Keys are unique (id is mixed into every key), so pops return the same
 * sequence as CPython's heapq regardless of internal layout. */
static i64 hpop(heap_t *h) {
    i64 top = h->a[0];
    i64 last = h->a[--h->len];
    i64 i = 0;
    for (;;) {
        i64 c = 2 * i + 1;
        if (c >= h->len) break;
        if (c + 1 < h->len && h->a[c + 1] < h->a[c]) c++;
        if (h->a[c] >= last) break;
        h->a[i] = h->a[c]; i = c;
    }
    if (h->len) h->a[i] = last;
    return top;
}

/* Replay context: everything carried across slabs. */
typedef struct {
    i64 m, s, dead_floor, heap_cap;
    int belady;
    heap_t heap, dead, stash;
    i64 *current_key;
    unsigned char *blue;
    i64 *dying;
    i64 dying_len, dying_cap;
    i64 loads, stores, evictions, compactions, red;
} ctx_t;

/* Shared eviction core: mirror of simulator.make_room.  The callers take
 * the Belady dead fast path first, so this only runs when the dead heap is
 * empty (and always under LRU). */
static int make_room(ctx_t *c, const i64 *protect, i64 n_protect) {
    while (c->red >= c->s) {
        i64 victim = -1, entry = 0;
        while (c->heap.len) {
            entry = hpop(&c->heap);
            i64 pid = (c->belady ? -entry : entry) % c->m;
            if (c->current_key[pid] != entry) continue;  /* stale */
            int prot = 0;
            for (i64 t = 0; t < n_protect; t++)
                if (protect[t] == pid) { prot = 1; break; }
            if (prot) {
                if (hpush(&c->stash, entry)) return -3;
                continue;
            }
            victim = pid;
            break;
        }
        while (c->stash.len)
            if (hpush(&c->heap, hpop(&c->stash))) return -3;
        if (victim < 0) return -1;
        int live = c->belady ? (entry > c->dead_floor)
                             : (int)((entry / c->m) & 1);
        if (live && !c->blue[victim]) { c->stores++; c->blue[victim] = 1; }
        c->current_key[victim] = 1;  /* NOT_RESIDENT */
        c->red--; c->evictions++;
    }
    return 0;
}

void replay_free(void *ptr) {
    ctx_t *c = (ctx_t *)ptr;
    if (!c) return;
    free(c->current_key); free(c->blue); free(c->dying);
    free(c->heap.a); free(c->dead.a); free(c->stash.a);
    free(c);
}

/* A fresh context, or NULL on allocation failure. */
void *replay_new(i64 m, i64 s, int belady,
                 const unsigned char *starts_blue, i64 dead_floor)
{
    ctx_t *c = (ctx_t *)calloc(1, sizeof(ctx_t));
    if (!c) return 0;
    c->m = m; c->s = s; c->dead_floor = dead_floor; c->belady = belady;
    c->heap_cap = 4 * s > 8192 ? 4 * s : 8192;
    size_t mm = (size_t)(m > 0 ? m : 1);
    c->current_key = (i64 *)malloc(mm * sizeof(i64));
    c->blue = (unsigned char *)malloc(mm);
    c->dying = (i64 *)malloc(64 * sizeof(i64));
    c->dying_cap = 64;
    if (!c->current_key || !c->blue || !c->dying) {
        replay_free(c);
        return 0;
    }
    for (i64 i = 0; i < m; i++) c->current_key[i] = 1;  /* NOT_RESIDENT */
    if (m) memcpy(c->blue, starts_blue, (size_t)m);
    return c;
}

/* Advance the context over one slab of positions.  ``offsets`` has
 * slab_positions + 1 entries rebased to 0; parents/access_keys run over
 * the slab's accesses only; computed/store_at/compute_keys over its
 * positions.  Returns 0 on success, -1 when S is too small, -2 when a
 * needed value is neither red nor blue (id in *err_id), -3 on allocation
 * failure. */
int replay_slab(void *ptr, i64 slab_positions,
                const i64 *offsets, const i64 *parents, const i64 *computed,
                const unsigned char *store_at,
                const i64 *access_keys, const i64 *compute_keys,
                i64 *err_id)
{
    ctx_t *c = (ctx_t *)ptr;
    const i64 NOT_RES = 1, DEAD_MARK = 2;
    i64 s = c->s, dead_floor = c->dead_floor;
    int belady = c->belady;

    for (i64 pos = 0; pos < slab_positions; pos++) {
        i64 lo = offsets[pos], hi = offsets[pos + 1];
        for (i64 k = lo; k < hi; k++) {
            i64 pid = parents[k];
            i64 key = access_keys[k];
            if (c->current_key[pid] == NOT_RES) {
                if (!c->blue[pid]) { *err_id = pid; return -2; }
                c->loads++;
                if (c->red < s) c->red++;
                else if (c->dead.len) {
                    c->current_key[-hpop(&c->dead)] = NOT_RES;
                    c->evictions++;
                } else {
                    int rc = make_room(c, parents + lo, hi - lo);
                    if (rc) return rc;
                    c->red++;
                }
            }
            if (key > dead_floor) {
                c->current_key[pid] = key;
                if (hpush(&c->heap, key)) return -3;
            } else {  /* last use: deferred dead-heap push */
                c->current_key[pid] = DEAD_MARK;
                if (c->dying_len == c->dying_cap) {
                    i64 ncap = c->dying_cap * 2;
                    i64 *nd = (i64 *)realloc(c->dying,
                                             (size_t)ncap * sizeof(i64));
                    if (!nd) return -3;
                    c->dying = nd; c->dying_cap = ncap;
                }
                c->dying[c->dying_len++] = -pid;
            }
        }
        if (c->red < s) c->red++;
        else if (c->dead.len) {
            c->current_key[-hpop(&c->dead)] = NOT_RES;
            c->evictions++;
        } else {
            int rc = make_room(c, parents + lo, hi - lo);
            if (rc) return rc;
            c->red++;
        }
        i64 vid = computed[pos], ckey = compute_keys[pos];
        if (ckey > dead_floor) {
            c->current_key[vid] = ckey;
            if (hpush(&c->heap, ckey)) return -3;
        } else {
            c->current_key[vid] = DEAD_MARK;
            if (hpush(&c->dead, -vid)) return -3;
        }
        if (store_at[pos]) { c->blue[vid] = 1; c->stores++; }
        while (c->dying_len)
            if (hpush(&c->dead, c->dying[--c->dying_len])) return -3;
        /* Mirror the Python loop's compaction: bound the lazy snapshot
         * heap at O(S) instead of O(accesses).  Removing stale entries
         * never changes a pop result (they are skipped at pop time). */
        if (c->heap.len > c->heap_cap) {
            i64 w = 0;
            for (i64 t = 0; t < c->heap.len; t++) {
                i64 e = c->heap.a[t];
                i64 pid = (belady ? -e : e) % c->m;
                if (c->current_key[pid] == e) c->heap.a[w++] = e;
            }
            c->heap.len = w;
            hheapify(&c->heap);
            c->compactions++;
        }
    }
    return 0;
}

/* out: loads, stores, evictions, heap compactions.  Cheap enough to call
 * after every slab -- the traced replay path reads per-slab deltas from
 * here so spans carry real work counters. */
void replay_counts(void *ptr, i64 *out) {
    ctx_t *c = (ctx_t *)ptr;
    out[0] = c->loads; out[1] = c->stores; out[2] = c->evictions;
    out[3] = c->compactions;
}

/* One-shot wrapper over the slab machinery (kept for direct callers).
 * out: loads, stores, evictions, error id.  Returns 0 on success, -1 when
 * S is too small, -2 when a needed value is neither red nor blue, -3 on
 * allocation failure. */
int replay(i64 n_positions, i64 m, i64 s, int belady,
           const i64 *offsets, const i64 *parents, const i64 *computed,
           const unsigned char *store_at, const unsigned char *starts_blue,
           const i64 *access_keys, const i64 *compute_keys,
           i64 dead_floor, i64 *out)
{
    ctx_t *c = (ctx_t *)replay_new(m, s, belady, starts_blue, dead_floor);
    if (!c) return -3;
    i64 err_id = -1;
    int rc = replay_slab(c, n_positions, offsets, parents, computed,
                         store_at, access_keys, compute_keys, &err_id);
    out[0] = c->loads; out[1] = c->stores; out[2] = c->evictions;
    out[3] = err_id;
    replay_free(c);
    return rc;
}
"""

_lib: ctypes.CDLL | None | bool = None  # None = not tried, False = unavailable
#: typed record of why the native core is unavailable (None while untried
#: or loaded): {"error_class", "message"} -- surfaced via native_status()
_build_error: dict | None = None


def _cache_dir() -> Path:
    """The preferred build cache: override, then XDG, then ``~/.cache``."""
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    if xdg:
        return Path(xdg) / "repro-native"
    return Path.home() / ".cache" / "repro-native"


def _cache_candidates() -> list[Path]:
    """Cache dirs in preference order: :func:`_cache_dir`, then a per-user
    tempdir -- sandboxed CI often mounts the home cache read-only, and
    silently losing the native core there costs 30x replay throughput."""
    user = getattr(os, "getuid", lambda: "u")()
    return [
        _cache_dir(),
        Path(tempfile.gettempdir()) / f"repro-native-{user}",
    ]


def _build() -> ctypes.CDLL | None:
    from repro import faults

    faults.inject("native.compile")
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    so_name = f"replay-{digest}.so"
    candidates = _cache_candidates()
    for cache in candidates:
        so_path = cache / so_name
        if so_path.exists():
            return _load(so_path)
    for cache in candidates:
        try:
            cache.mkdir(parents=True, exist_ok=True)
            so_path = cache / so_name
            src = cache / f"replay-{digest}.c"
            src.write_text(_SOURCE)
            with tempfile.NamedTemporaryFile(
                suffix=".so", dir=cache, delete=False
            ) as tmp:
                tmp_path = Path(tmp.name)
        except OSError:
            continue  # unwritable cache: fall through to the next candidate
        result = subprocess.run(
            ["cc", "-O2", "-shared", "-fPIC", "-o", str(tmp_path), str(src)],
            capture_output=True,
            timeout=120,
        )
        if result.returncode != 0:
            tmp_path.unlink(missing_ok=True)
            return None  # a broken compiler will not improve elsewhere
        os.replace(tmp_path, so_path)  # atomic under concurrent builders
        return _load(so_path)
    return None


def _load(so_path: Path) -> ctypes.CDLL:
    lib = ctypes.CDLL(str(so_path))
    i64 = ctypes.c_longlong
    p64 = ctypes.POINTER(i64)
    pu8 = ctypes.POINTER(ctypes.c_ubyte)
    lib.replay.argtypes = [
        i64, i64, i64, ctypes.c_int,
        p64, p64, p64, pu8, pu8, p64, p64, i64, p64,
    ]
    lib.replay.restype = ctypes.c_int
    lib.replay_new.argtypes = [i64, i64, ctypes.c_int, pu8, i64]
    lib.replay_new.restype = ctypes.c_void_p
    lib.replay_slab.argtypes = [
        ctypes.c_void_p, i64, p64, p64, p64, pu8, p64, p64, p64,
    ]
    lib.replay_slab.restype = ctypes.c_int
    lib.replay_counts.argtypes = [ctypes.c_void_p, p64]
    lib.replay_counts.restype = None
    lib.replay_free.argtypes = [ctypes.c_void_p]
    lib.replay_free.restype = None
    return lib


def native_replay_lib() -> ctypes.CDLL | None:
    """The compiled replay core, or ``None`` when unavailable/disabled.

    A failed build degrades to the (30x slower) Python core.  The failure
    is recorded typed (:func:`native_status`) and counted once per process
    (``native_fallbacks_total``) so the degradation is visible in metrics
    instead of being a silent throughput cliff.
    """
    global _lib, _build_error
    if os.environ.get("REPRO_NO_NATIVE_REPLAY"):
        return None
    if _lib is None:
        try:
            lib = _build()
            if lib is None:
                _build_error = {
                    "error_class": "CompileFailed",
                    "message": "cc failed or no writable cache dir",
                }
            _lib = lib or False
        except Exception as err:  # noqa: BLE001 - degrade, never crash replay
            _build_error = {
                "error_class": type(err).__name__,
                "message": str(err),
            }
            _lib = False
        if _lib is False:
            from repro.obs import default_registry

            default_registry().inc(
                "native_fallbacks_total",
                error=_build_error["error_class"],
            )
    return _lib or None


def native_status() -> dict:
    """Diagnostics: is the native core loaded, and if not, why not."""
    if os.environ.get("REPRO_NO_NATIVE_REPLAY"):
        return {"available": False, "reason": "disabled (REPRO_NO_NATIVE_REPLAY)"}
    if _lib is None:
        return {"available": None, "reason": "not yet attempted"}
    if _lib is False:
        out = {"available": False}
        if _build_error is not None:
            out.update(_build_error)
        return out
    return {"available": True}
