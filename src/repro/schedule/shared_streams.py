"""Zero-copy stream sharing for parallel sweeps.

A built :class:`~repro.schedule.stream.AccessStream` (plus its memoized
next-use arrays) is published once to a ``multiprocessing.shared_memory``
segment, keyed by a *stream signature* -- a stable digest of what the
stream is (kernel, params, schedule key).  Sweep workers then **attach**
read-only numpy views over the segment instead of rebuilding the stream
per process: the tiny picklable :class:`SharedStreamRef` travels through
the process pool, the arrays never do.

Lifecycle: the publisher (a phase-A sweep worker or the driver) copies the
arrays in and closes its mapping; the segment itself persists until the
sweep driver calls :func:`unlink` -- POSIX shared memory outlives the
creating process, which is exactly what lets phase-A pool workers hand
streams to phase-B workers without routing bytes through the driver.
Python >= 3.9's resource tracker would fight this ownership model (3.11
registers segments on *attach* as well as create, so any exiting worker
could tear a live segment down); :func:`_untrack` opts every handle out,
and the driver's explicit :func:`unlink` is the single point of cleanup.

Attached views are cached per process (:func:`attach_cached`), so a worker
replaying many (kernel, S) points of one sweep maps each segment once.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.schedule.stream import AccessStream

#: stream columns published to the segment, in layout order
_FIELDS = (
    "parent_offsets",
    "parent_ids",
    "computed_ids",
    "starts_blue",
    "store_at_compute",
)
#: derived next-use arrays, published so workers never recompute them
_DERIVED = ("next_after", "first_use")


@dataclass(frozen=True)
class SharedStreamRef:
    """Picklable descriptor of one published stream.

    ``fields`` maps every array to its slice of the segment:
    ``(name, dtype_str, length, byte_offset)`` -- enough to rebuild
    zero-copy views in any process that can open ``name``.
    """

    name: str  #: shared-memory segment name (OS-level)
    signature: str  #: stable content key -- see :func:`stream_signature`
    n_positions: int
    n_ids: int
    chunk_positions: int | None
    fields: tuple


def stream_signature(*parts) -> str:
    """A stable hex digest identifying a stream by what it was built from."""
    raw = "\x1f".join(repr(p) for p in parts)
    return hashlib.sha1(raw.encode()).hexdigest()[:16]


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Opt a handle out of the resource tracker (the driver owns cleanup)."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def publish(stream: AccessStream, signature: str) -> SharedStreamRef:
    """Copy ``stream`` (and its next-use arrays) into a fresh segment.

    Computes the next-use arrays if the stream has not yet (so attaching
    workers inherit the memo), closes the local mapping, and returns the
    descriptor.  The segment persists until :func:`unlink`.
    """
    next_after, first_use = stream.next_use_arrays()
    arrays = [
        (fname, np.ascontiguousarray(getattr(stream, fname)))
        for fname in _FIELDS
    ]
    arrays.append(("next_after", np.ascontiguousarray(next_after)))
    arrays.append(("first_use", np.ascontiguousarray(first_use)))

    fields = []
    offset = 0
    for fname, arr in arrays:
        offset = -(-offset // 8) * 8  # 8-byte alignment per array
        fields.append((fname, arr.dtype.str, len(arr), offset))
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    _untrack(shm)
    try:
        for (fname, arr), (_, dtype, length, off) in zip(arrays, fields):
            view = np.ndarray(
                (length,), dtype=np.dtype(dtype), buffer=shm.buf, offset=off
            )
            view[:] = arr
            del view  # release the buffer before closing the mapping
        ref = SharedStreamRef(
            name=shm.name,
            signature=signature,
            n_positions=stream.n_positions,
            n_ids=stream.n_ids,
            chunk_positions=stream.chunk_positions,
            fields=tuple(fields),
        )
    finally:
        shm.close()
    return ref


def attach(ref: SharedStreamRef) -> AccessStream:
    """Open a published stream as read-only zero-copy views.

    The returned stream's arrays alias the shared segment directly (no
    copies, marked non-writeable) and its next-use memo is pre-populated
    from the published arrays.  The segment handle is kept alive on the
    stream itself.
    """
    shm = shared_memory.SharedMemory(name=ref.name)
    _untrack(shm)
    views: dict[str, np.ndarray] = {}
    for fname, dtype, length, off in ref.fields:
        arr = np.ndarray(
            (length,), dtype=np.dtype(dtype), buffer=shm.buf, offset=off
        )
        arr.flags.writeable = False
        views[fname] = arr
    return AccessStream(
        n_positions=ref.n_positions,
        n_ids=ref.n_ids,
        parent_offsets=views["parent_offsets"],
        parent_ids=views["parent_ids"],
        computed_ids=views["computed_ids"],
        starts_blue=views["starts_blue"],
        store_at_compute=views["store_at_compute"],
        labels=None,
        chunk_positions=ref.chunk_positions,
        _next_use_pair=(views["next_after"], views["first_use"]),
        _arena=shm,
    )


#: per-process attach cache: one mapping per segment per worker
_ATTACHED: dict[str, AccessStream] = {}
#: how many :func:`attach_cached` calls actually mapped a segment (tests
#: assert sweep workers attach once per stream and never rebuild)
_ATTACH_COUNT = 0


def attach_cached(ref: SharedStreamRef) -> AccessStream:
    """:func:`attach` with a per-process cache keyed by segment name."""
    global _ATTACH_COUNT
    stream = _ATTACHED.get(ref.name)
    if stream is None:
        stream = attach(ref)
        _ATTACHED[ref.name] = stream
        _ATTACH_COUNT += 1
    return stream


def detach_all() -> None:
    """Drop the per-process attach cache (tests / long-lived daemons)."""
    _ATTACHED.clear()


def unlink(ref: SharedStreamRef) -> None:
    """Destroy a published segment (driver-side cleanup; idempotent)."""
    try:
        shm = shared_memory.SharedMemory(name=ref.name)
    except FileNotFoundError:
        return
    try:
        shm.close()
        shm.unlink()
    except FileNotFoundError:
        pass
