"""Zero-copy stream sharing for parallel sweeps.

A built :class:`~repro.schedule.stream.AccessStream` (plus its memoized
next-use arrays) is published once to a ``multiprocessing.shared_memory``
segment, keyed by a *stream signature* -- a stable digest of what the
stream is (kernel, params, schedule key).  Sweep workers then **attach**
read-only numpy views over the segment instead of rebuilding the stream
per process: the tiny picklable :class:`SharedStreamRef` travels through
the process pool, the arrays never do.

Lifecycle: the publisher (a phase-A sweep worker or the driver) copies the
arrays in and closes its mapping; the segment itself persists until the
sweep driver calls :func:`unlink` -- POSIX shared memory outlives the
creating process, which is exactly what lets phase-A pool workers hand
streams to phase-B workers without routing bytes through the driver.
Python >= 3.9's resource tracker would fight this ownership model (3.11
registers segments on *attach* as well as create, so any exiting worker
could tear a live segment down); :func:`_untrack` opts every handle out,
and the driver's explicit :func:`unlink` is the single point of cleanup.

Because segments outlive processes, a driver that dies between publish and
unlink leaks them.  Every segment is therefore named
``reprosoap-<creator pid>-<random>``, and :func:`sweep_orphans` (run at
service boot) unlinks any segment whose creator is no longer alive.

Attached views are cached per process (:func:`attach_cached`), so a worker
replaying many (kernel, S) points of one sweep maps each segment once.
Swallowed cleanup errors are kept as typed records (:func:`error_records`)
instead of vanishing, so degraded cleanup is attributable in diagnostics.
"""

from __future__ import annotations

import hashlib
import os
import re
import secrets
from collections import deque
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path

import numpy as np

from repro import faults
from repro.schedule.stream import AccessStream

#: stream columns published to the segment, in layout order
_FIELDS = (
    "parent_offsets",
    "parent_ids",
    "computed_ids",
    "starts_blue",
    "store_at_compute",
)
#: derived next-use arrays, published so workers never recompute them
_DERIVED = ("next_after", "first_use")

#: segment name prefix; encodes the creating pid for the orphan sweep
_NAME_PREFIX = "reprosoap"
_NAME_RE = re.compile(rf"^{_NAME_PREFIX}-(\d+)-[0-9a-f]+$")
#: where POSIX shared memory appears as files (Linux); the orphan sweep is
#: a no-op on platforms without it
_SHM_DIR = Path("/dev/shm")

#: recent swallowed-but-recorded errors: {"op", "error_class", "message"}
_ERRORS: deque = deque(maxlen=64)


def _record_error(op: str, err: BaseException) -> None:
    _ERRORS.append(
        {"op": op, "error_class": type(err).__name__, "message": str(err)}
    )


def error_records() -> list[dict]:
    """Typed records of swallowed shared-memory errors (newest last)."""
    return list(_ERRORS)


def _segment_name() -> str:
    return f"{_NAME_PREFIX}-{os.getpid()}-{secrets.token_hex(6)}"


@dataclass(frozen=True)
class SharedStreamRef:
    """Picklable descriptor of one published stream.

    ``fields`` maps every array to its slice of the segment:
    ``(name, dtype_str, length, byte_offset)`` -- enough to rebuild
    zero-copy views in any process that can open ``name``.
    """

    name: str  #: shared-memory segment name (OS-level)
    signature: str  #: stable content key -- see :func:`stream_signature`
    n_positions: int
    n_ids: int
    chunk_positions: int | None
    fields: tuple


def stream_signature(*parts) -> str:
    """A stable hex digest identifying a stream by what it was built from."""
    raw = "\x1f".join(repr(p) for p in parts)
    return hashlib.sha1(raw.encode()).hexdigest()[:16]


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Opt a handle out of the resource tracker (the driver owns cleanup)."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except (ImportError, AttributeError, KeyError, ValueError, OSError) as err:
        # Losing the opt-out risks a premature teardown by whichever worker
        # exits first -- degraded, not fatal, but it must stay attributable.
        _record_error("untrack", err)


def publish(stream: AccessStream, signature: str) -> SharedStreamRef:
    """Copy ``stream`` (and its next-use arrays) into a fresh segment.

    Computes the next-use arrays if the stream has not yet (so attaching
    workers inherit the memo), closes the local mapping, and returns the
    descriptor.  The segment persists until :func:`unlink`.
    """
    next_after, first_use = stream.next_use_arrays()
    arrays = [
        (fname, np.ascontiguousarray(getattr(stream, fname)))
        for fname in _FIELDS
    ]
    arrays.append(("next_after", np.ascontiguousarray(next_after)))
    arrays.append(("first_use", np.ascontiguousarray(first_use)))

    fields = []
    offset = 0
    for fname, arr in arrays:
        offset = -(-offset // 8) * 8  # 8-byte alignment per array
        fields.append((fname, arr.dtype.str, len(arr), offset))
        offset += arr.nbytes
    shm = shared_memory.SharedMemory(
        create=True, size=max(offset, 1), name=_segment_name()
    )
    _untrack(shm)
    try:
        for (fname, arr), (_, dtype, length, off) in zip(arrays, fields):
            view = np.ndarray(
                (length,), dtype=np.dtype(dtype), buffer=shm.buf, offset=off
            )
            view[:] = arr
            del view  # release the buffer before closing the mapping
        ref = SharedStreamRef(
            name=shm.name,
            signature=signature,
            n_positions=stream.n_positions,
            n_ids=stream.n_ids,
            chunk_positions=stream.chunk_positions,
            fields=tuple(fields),
        )
    finally:
        shm.close()
    return ref


def attach(ref: SharedStreamRef) -> AccessStream:
    """Open a published stream as read-only zero-copy views.

    The returned stream's arrays alias the shared segment directly (no
    copies, marked non-writeable) and its next-use memo is pre-populated
    from the published arrays.  The segment handle is kept alive on the
    stream itself.

    Raises ``FileNotFoundError`` when the segment is gone and ``ValueError``
    when it is smaller than the descriptor promises (a torn publish or a
    sweep of a live segment) -- callers degrade by rebuilding the stream
    locally (:func:`attach_or_rebuild`).
    """
    faults.inject("shared.attach")
    shm = shared_memory.SharedMemory(name=ref.name)
    _untrack(shm)
    needed = max(
        (off + len_ * np.dtype(dtype).itemsize for _, dtype, len_, off in ref.fields),
        default=0,
    )
    if shm.size < needed or faults.triggered("shared.attach.undersized"):
        shm.close()
        raise ValueError(
            f"shared segment {ref.name} is undersized: "
            f"{shm.size} bytes mapped, {needed} promised by the descriptor"
        )
    views: dict[str, np.ndarray] = {}
    for fname, dtype, length, off in ref.fields:
        arr = np.ndarray(
            (length,), dtype=np.dtype(dtype), buffer=shm.buf, offset=off
        )
        arr.flags.writeable = False
        views[fname] = arr
    return AccessStream(
        n_positions=ref.n_positions,
        n_ids=ref.n_ids,
        parent_offsets=views["parent_offsets"],
        parent_ids=views["parent_ids"],
        computed_ids=views["computed_ids"],
        starts_blue=views["starts_blue"],
        store_at_compute=views["store_at_compute"],
        labels=None,
        chunk_positions=ref.chunk_positions,
        _next_use_pair=(views["next_after"], views["first_use"]),
        _arena=shm,
    )


#: per-process attach cache: one mapping per segment per worker
_ATTACHED: dict[str, AccessStream] = {}
#: how many :func:`attach_cached` calls actually mapped a segment (tests
#: assert sweep workers attach once per stream and never rebuild)
_ATTACH_COUNT = 0
#: attaches that failed and fell back to a local rebuild
_ATTACH_FALLBACKS = 0


def attach_cached(ref: SharedStreamRef) -> AccessStream:
    """:func:`attach` with a per-process cache keyed by segment name."""
    global _ATTACH_COUNT
    stream = _ATTACHED.get(ref.name)
    if stream is None:
        stream = attach(ref)
        _ATTACHED[ref.name] = stream
        _ATTACH_COUNT += 1
    return stream


def attach_or_rebuild(ref: SharedStreamRef, rebuild) -> AccessStream:
    """Attach ``ref``; on a missing/undersized segment rebuild locally.

    ``rebuild`` is a zero-argument callable producing an equivalent
    :class:`AccessStream` from scratch.  A lost segment costs the rebuild
    time in one worker -- never the sweep's correctness -- and is recorded
    both in :func:`error_records` and the fallback counter.
    """
    global _ATTACH_FALLBACKS
    try:
        return attach_cached(ref)
    except (FileNotFoundError, ValueError, OSError) as err:
        _record_error("attach", err)
        _ATTACH_FALLBACKS += 1
        stream = rebuild()
        _ATTACHED[ref.name] = stream  # same fallback for later points
        return stream


def attach_fallbacks() -> int:
    """How many attaches in this process degraded to a local rebuild."""
    return _ATTACH_FALLBACKS


def detach_all() -> None:
    """Drop the per-process attach cache (tests / long-lived daemons)."""
    _ATTACHED.clear()


def unlink(ref: SharedStreamRef) -> None:
    """Destroy a published segment (driver-side cleanup; idempotent)."""
    _unlink_name(ref.name)


def _unlink_name(name: str) -> bool:
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    except OSError as err:  # pragma: no cover - platform-specific open races
        _record_error("unlink", err)
        return False
    try:
        shm.close()
        shm.unlink()
    except FileNotFoundError:
        return False
    except OSError as err:  # pragma: no cover - unlink race with another sweep
        _record_error("unlink", err)
        return False
    return True


def sweep_orphans() -> int:
    """Unlink segments whose creating process is dead; returns the count.

    Only segments carrying this module's name prefix are considered, and a
    segment is an orphan only if its embedded creator pid no longer exists.
    Safe to run concurrently with live sweeps: their creators are alive.
    """
    if not _SHM_DIR.is_dir():  # pragma: no cover - non-Linux platforms
        return 0
    removed = 0
    try:
        entries = list(_SHM_DIR.iterdir())
    except OSError as err:  # pragma: no cover - /dev/shm unreadable
        _record_error("sweep", err)
        return 0
    for entry in entries:
        match = _NAME_RE.match(entry.name)
        if match is None:
            continue
        pid = int(match.group(1))
        if _pid_alive(pid):
            continue
        if _unlink_name(entry.name):
            removed += 1
    return removed


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - someone else's pid: alive
        return True
    return True
