"""Streaming replay simulator: equivalence with the pebble game, edge cases.

The central contract: ``simulate_io`` over ``stream_from_graph(graph, order)``
is **bit-identical** to ``greedy_pebbling_cost(graph, s, order)`` under the
same eviction policy -- the simulator is a reimplementation of the same
deterministic schedule executor, not an approximation.  Identity is checked
move-for-move (loads, stores, evictions), across both replay backends (the
pure-Python loop and the optional compiled core).
"""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.cdag.build import build_cdag
from repro.kernels import get_kernel
from repro.pebbling.greedy import (
    default_order,
    greedy_pebbling_cost,
    stream_vertex_ids,
)
from repro.schedule.simulator import _replay, simulate_io
from repro.schedule.stream import single_statement_stream, stream_from_graph
from repro.util.errors import PebblingError


def game_counts(graph, s, order=None, *, policy="belady"):
    """(cost, loads, stores, evictions) straight from the pebble game."""
    cost, moves = greedy_pebbling_cost(
        graph, s, order, policy=policy, return_moves=True
    )
    kinds = [m.kind for m in moves]
    return (
        cost,
        kinds.count("load"),
        kinds.count("store"),
        kinds.count("discard_red"),
    )


def chain(n: int) -> nx.DiGraph:
    return nx.DiGraph([(i, i + 1) for i in range(n)])


def sym_n():
    import sympy as sp

    return sp.Symbol("N", positive=True)


KERNEL_CASES = [
    ("gemm", {"N": 4}, (4, 6, 8, 12)),
    ("atax", {"M": 4, "N": 4}, (4, 6, 10)),
    ("jacobi1d", {"N": 8, "T": 4}, (4, 6, 8)),
    ("cholesky", {"N": 5}, (6, 9)),
    ("syrk", {"M": 4, "N": 4}, (6, 8)),
    ("doitgen", {"NR": 3, "NQ": 3, "NP": 3}, (6, 10)),
    ("gesummv", {"N": 4}, (4, 8)),
]


class TestEquivalenceWithPebbleGame:
    @pytest.mark.parametrize("name,params,s_values", KERNEL_CASES)
    @pytest.mark.parametrize("policy", ["belady", "lru"])
    def test_kernel_cdags_bit_identical(self, name, params, s_values, policy):
        """Not just total cost: loads, stores, and evictions all match."""
        cdag = build_cdag(get_kernel(name).build(), params)
        stream = stream_from_graph(cdag.graph)
        for s in s_values:
            game = game_counts(cdag.graph, s, policy=policy)
            replay = simulate_io(stream, s, policy=policy)
            assert (
                replay.cost, replay.loads, replay.stores, replay.evictions
            ) == game, (name, s, policy)

    def test_explicit_order_bit_identical(self):
        from repro.analysis import analyze_kernel
        from repro.schedule.derive import blocked_order, derive_schedule

        program = get_kernel("gemm").build()
        result = analyze_kernel("gemm")
        params = {"N": 6}
        cdag = build_cdag(program, params)
        schedule = derive_schedule(program, result.program_bound, params, 18)
        order = blocked_order(cdag, schedule)
        stream = stream_from_graph(cdag.graph, order)
        for s in (8, 18):
            assert (
                simulate_io(stream, s).cost
                == greedy_pebbling_cost(cdag.graph, s, order)
            )

    def test_chain(self):
        stream = stream_from_graph(chain(4))
        assert simulate_io(stream, 2).cost == greedy_pebbling_cost(chain(4), 2)
        assert simulate_io(stream, 2).cost == 2  # 1 load + 1 final store

    def test_too_small_s_raises_like_game(self):
        g = nx.DiGraph([(0, 3), (1, 3), (2, 3)])
        stream = stream_from_graph(g)
        with pytest.raises(PebblingError):
            greedy_pebbling_cost(g, 3)
        with pytest.raises(PebblingError):
            simulate_io(stream, 3)

    def test_unknown_policy_rejected(self):
        stream = stream_from_graph(chain(3))
        with pytest.raises(PebblingError):
            simulate_io(stream, 2, policy="fifo")
        with pytest.raises(PebblingError):
            greedy_pebbling_cost(chain(3), 2, policy="fifo")


# ---------------------------------------------------------------------------
# Belady tie-breaking edge cases
# ---------------------------------------------------------------------------


class TestTieBreaking:
    def test_dead_values_evicted_without_store(self):
        """Outputs with no further use are never written back at eviction --
        they were already stored at compute time."""
        # two independent chains sharing capacity: finishing chain A's output
        # leaves a dead red vertex that must be discarded silently.
        g = nx.DiGraph([(0, 1), (2, 3)])
        stream = stream_from_graph(g)
        for s in (2, 3):
            result = simulate_io(stream, s)
            assert result.cost == greedy_pebbling_cost(g, s)
        # 2 loads + 2 stores: no spurious write-backs of the dead chain head
        assert simulate_io(stream, 2).cost == 4

    def test_repeated_use_same_vertex(self):
        """A parent used at several consecutive positions keeps its pebble
        under Belady; its next-use index advances per position."""
        g = nx.DiGraph([(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)])
        stream = stream_from_graph(g)
        for s in (3, 4):
            assert simulate_io(stream, s).cost == greedy_pebbling_cost(g, s)

    def test_tied_next_use_broken_by_stream_id(self):
        """Two reds used at the same future position: the one with the larger
        stream id is evicted, in both implementations."""
        # inputs 0,1 both feed vertex 4 (same next use); vertex 2,3 chain
        # forces an eviction while 0,1 are tied.
        g = nx.DiGraph([(0, 4), (1, 4), (2, 3), (3, 4)])
        order = [v for v in nx.topological_sort(g) if g.in_degree(v) > 0]
        stream = stream_from_graph(g, order)
        for s in (4, 5):
            assert (
                simulate_io(stream, s).cost
                == greedy_pebbling_cost(g, s, order)
            )

    def test_determinism_across_runs(self):
        """Same graph, same order -> same cost, every time (no set-iteration
        nondeterminism left in the greedy pebbler)."""
        cdag = build_cdag(get_kernel("gemm").build(), {"N": 4})
        costs = {greedy_pebbling_cost(cdag.graph, 6) for _ in range(3)}
        assert len(costs) == 1


# ---------------------------------------------------------------------------
# streams
# ---------------------------------------------------------------------------


class TestAccessStream:
    def test_ids_are_first_appearance(self):
        g = nx.DiGraph([(0, 2), (1, 2), (2, 3)])
        order = default_order(g)
        ids = stream_vertex_ids(g, order)
        stream = stream_from_graph(g, order)
        assert stream.labels[ids[0]] == 0
        assert sorted(ids.values()) == list(range(len(ids)))
        # parents of the first computed vertex come first
        assert stream.parent_ids[0] == ids[0]

    def test_starts_blue_marks_inputs_only(self):
        cdag = build_cdag(get_kernel("gemm").build(), {"N": 3})
        stream = stream_from_graph(cdag.graph)
        n_blue = sum(stream.starts_blue)
        assert n_blue == len(cdag.inputs)

    def test_store_at_compute_marks_outputs(self):
        cdag = build_cdag(get_kernel("gemm").build(), {"N": 3})
        stream = stream_from_graph(cdag.graph)
        assert sum(stream.store_at_compute) == len(cdag.outputs)

    def test_rejects_partial_order(self):
        with pytest.raises(PebblingError):
            stream_from_graph(chain(3), order=[1])


class TestSingleStatementStream:
    @pytest.mark.parametrize("tile", [1, 2, 3])
    def test_gemm_matches_graph_stream(self, tile):
        """IR-direct stream == graph stream under the same blocked order
        (tile=1 degenerates to plain lexicographic program order)."""
        from repro.pebbling.greedy import tiled_order

        program = get_kernel("gemm").build()
        params = {"N": 6}
        tiles = {"i": tile, "j": tile, "k": tile}
        direct = single_statement_stream(
            program, params, tile_sizes=tiles, variable_order=["i", "j", "k"]
        )
        cdag = build_cdag(program, params)
        order = tiled_order(cdag.graph, cdag.point_of, tiles, ["i", "j", "k"])
        graph_stream = stream_from_graph(cdag.graph, order)
        assert direct.n_positions == graph_stream.n_positions
        assert direct.n_accesses == graph_stream.n_accesses
        for s in (6, 10, 18):
            assert (
                simulate_io(direct, s).cost == simulate_io(graph_stream, s).cost
            )

    def test_duplicate_reads_deduplicated(self):
        """syrk reads A[i,k] and A[j,k]: at i == j they are one parent,
        matching build_cdag's edge semantics."""
        from repro.pebbling.greedy import tiled_order

        program = get_kernel("syrk").build()
        params = {"N": 4, "M": 4}
        variables = ["i", "j", "k"]
        tiles = {v: 1 for v in variables}
        direct = single_statement_stream(
            program, params, tile_sizes=tiles, variable_order=variables
        )
        cdag = build_cdag(program, params)
        order = tiled_order(cdag.graph, cdag.point_of, tiles, variables)
        graph_stream = stream_from_graph(cdag.graph, order)
        assert direct.n_accesses == graph_stream.n_accesses
        assert simulate_io(direct, 8).cost == simulate_io(graph_stream, 8).cost

    def test_multi_statement_rejected(self):
        from repro.schedule.stream import ScheduleError

        program = get_kernel("atax").build()
        with pytest.raises(ScheduleError):
            single_statement_stream(program, {"M": 3, "N": 3})

    def test_illegal_order_detected(self):
        """An order executing a reduction chain out of program order must
        raise, not silently build a different CDAG.  A single reduction
        variable stays legal under any blocking (its own order is preserved);
        swapping the relative order of *two* reduction variables is not."""
        from repro.ir.program import Program
        from repro.kernels.common import ref, stmt
        from repro.schedule.stream import ScheduleError

        update = stmt(
            "acc", {"i": sym_n(), "a": sym_n(), "b": sym_n()},
            ref("C", "i"), ref("C", "i"), ref("A", "i,a,b"),
        )
        program = Program.make("acc3", [update])
        params = {"N": 3}
        # legal: blocking the spatial loop keeps each (a, b) chain in order
        single_statement_stream(
            program, params, tile_sizes={"i": 2}, variable_order=["i", "a", "b"]
        )
        with pytest.raises(ScheduleError):
            # swapped reduction variables: chains execute out of program order
            single_statement_stream(
                program, params, variable_order=["i", "b", "a"]
            )
        with pytest.raises(ScheduleError):
            # jointly blocking both reduction dims also reorders the chain
            single_statement_stream(
                program, params, tile_sizes={"a": 2, "b": 2},
                variable_order=["i", "a", "b"],
            )

    def test_single_reduction_var_any_order_legal(self):
        """gemm's k chain stays ascending under any lexicographic blocking,
        so even k-outermost streams legally (and matches the graph)."""
        from repro.pebbling.greedy import tiled_order

        program = get_kernel("gemm").build()
        params = {"N": 4}
        tiles = {"i": 2, "j": 2, "k": 2}
        variables = ["k", "i", "j"]
        direct = single_statement_stream(
            program, params, tile_sizes=tiles, variable_order=variables
        )
        cdag = build_cdag(program, params)
        order = tiled_order(cdag.graph, cdag.point_of, tiles, variables)
        graph_stream = stream_from_graph(cdag.graph, order)
        assert simulate_io(direct, 8).cost == simulate_io(graph_stream, 8).cost


# ---------------------------------------------------------------------------
# property-based: equivalence on random DAGs
# ---------------------------------------------------------------------------


@st.composite
def _random_dags(draw):
    n = draw(st.integers(4, 10))
    edges = []
    for v in range(1, n):
        parents = draw(
            st.lists(st.integers(0, v - 1), min_size=0, max_size=3, unique=True)
        )
        edges.extend((p, v) for p in parents)
    g = nx.DiGraph(edges)
    g.add_nodes_from(range(n))
    return g


@given(dag=_random_dags(), s=st.integers(3, 6), policy=st.sampled_from(["belady", "lru"]))
@settings(max_examples=80, deadline=None)
def test_simulator_matches_game_on_random_dags(dag, s, policy):
    """Full-count equivalence (loads, stores, evictions) on random legal
    streams, exercising both replay backends against the pebble game."""
    belady = policy == "belady"
    try:
        game = game_counts(dag, s, policy=policy)
    except PebblingError:
        stream = stream_from_graph(dag)
        with pytest.raises(PebblingError):
            simulate_io(stream, s, policy=policy)
        with pytest.raises(PebblingError):
            _replay(stream, s, belady=belady)
        return
    stream = stream_from_graph(dag)
    replay = simulate_io(stream, s, policy=policy)
    assert (replay.cost, replay.loads, replay.stores, replay.evictions) == game
    pure = _replay(stream, s, belady=belady)
    assert (pure.cost, pure.loads, pure.stores, pure.evictions) == game


# ---------------------------------------------------------------------------
# next-use table: pinning against the per-id use lists, memoization
# ---------------------------------------------------------------------------


class TestNextUseTable:
    def pinned_table(self, stream):
        """Reference next-use data derived from the per-id use lists."""
        uses = stream.uses_by_id()
        inf = stream.n_positions
        positions, next_after = [], []
        consumed = [0] * stream.n_ids
        for pos in range(stream.n_positions):
            lo, hi = stream.parent_offsets[pos], stream.parent_offsets[pos + 1]
            for pid in stream.parent_ids[lo:hi]:
                positions.append(pos)
                k = consumed[pid] + 1
                consumed[pid] = k
                u = uses[pid]
                next_after.append(u[k] if k < len(u) else inf)
        first = [u[0] if u else inf for u in uses]
        return next_after, first, positions

    @pytest.mark.parametrize("name,params", [
        ("gemm", {"N": 5}), ("atax", {"M": 4, "N": 5}),
        ("jacobi1d", {"N": 8, "T": 3}), ("cholesky", {"N": 5}),
    ])
    def test_vectorized_table_matches_use_lists(self, name, params):
        cdag = build_cdag(get_kernel(name).build(), params)
        stream = stream_from_graph(cdag.graph)
        next_after, first_use, positions = stream.next_use_table()
        ref_next, ref_first, ref_pos = self.pinned_table(stream)
        assert next_after.tolist() == ref_next
        assert first_use.tolist() == ref_first
        assert positions.tolist() == ref_pos

    def test_table_is_memoized(self):
        stream = stream_from_graph(chain(5))
        assert stream.next_use_table() is stream.next_use_table()

    def test_uses_by_id_ascending(self):
        cdag = build_cdag(get_kernel("gemm").build(), {"N": 4})
        stream = stream_from_graph(cdag.graph)
        for uses in stream.uses_by_id():
            assert uses == sorted(uses)


# ---------------------------------------------------------------------------
# native backend: differential against the pure-Python loop
# ---------------------------------------------------------------------------


class TestNativeBackend:
    @pytest.mark.parametrize("name,params,s_values", KERNEL_CASES)
    @pytest.mark.parametrize("policy", ["belady", "lru"])
    def test_native_matches_python(self, name, params, s_values, policy):
        from repro.schedule.simulator import _native_replay

        cdag = build_cdag(get_kernel(name).build(), params)
        stream = stream_from_graph(cdag.graph)
        belady = policy == "belady"
        for s in s_values:
            native = _native_replay(stream, s, belady=belady)
            if native is None:
                pytest.skip("no C compiler available for the native core")
            pure = _replay(stream, s, belady=belady)
            assert (
                native.loads, native.stores, native.evictions
            ) == (pure.loads, pure.stores, pure.evictions), (name, s, policy)

    def test_kill_switch_forces_python(self, monkeypatch):
        from repro.schedule import _native

        monkeypatch.setenv("REPRO_NO_NATIVE_REPLAY", "1")
        assert _native.native_replay_lib() is None
