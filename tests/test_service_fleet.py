"""Fleet behaviour of the sharded daemon: drain, reload, warm boot,
cross-worker determinism, and the solve-once invariant.

These tests exercise the daemon end-to-end over HTTP (ServiceThread +
ServiceClient) with a real forked worker fleet -- the shapes a deploy
orchestrator cares about, not the endpoint semantics (test_service.py).
"""

import threading
import time

import pytest

from repro.analysis import analyze_kernel
from repro.reporting.serialize import kernel_report
from repro.service import ServiceConfig, ServiceThread
from repro.service.client import ServiceClient, ServiceError

WARM_KERNELS = ("gemm", "atax", "mvt")


def _strip_volatile(report: dict) -> dict:
    """Everything except per-run diagnostics must be byte-identical."""
    return {k: v for k, v in report.items() if k != "diagnostics"}


def _wait_until(predicate, timeout=120.0, poll=0.05, message="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(poll)


class TestDrain:
    def test_drain_completes_accepted_work_then_503s(self):
        with ServiceThread(ServiceConfig(workers=2)) as thread:
            with ServiceClient(port=thread.port) as client:
                accepted = [
                    client.kernel(name, wait=False)
                    for name in ("gemm", "atax", "mvt", "bicg")
                ]
                thread.drain()  # blocks until all accepted jobs finish
                for record in accepted:
                    finished = client.job(record.id)
                    assert finished.state == "done", finished.error
                health = client.healthz()
                assert health.status == "draining"
                assert health.draining is True
                assert health.queue_depth == 0 and health.active_jobs == 0
                with pytest.raises(ServiceError) as err:
                    client.kernel("gesummv")
                assert err.value.status == 503

    def test_draining_healthz_is_http_503(self):
        with ServiceThread(ServiceConfig(workers=1)) as thread:
            with ServiceClient(port=thread.port) as client:
                thread.drain()
                # tolerate=(503,) inside healthz(): the payload still parses
                assert client.healthz().status == "draining"
                status, _, headers = client._exchange(
                    "GET", "/healthz", None, {}, False
                )
                assert status == 503
                assert "retry-after" in headers


class TestReload:
    def test_reload_replaces_worker_processes_and_resumes(self):
        with ServiceThread(ServiceConfig(workers=2)) as thread:
            with ServiceClient(port=thread.port) as client:
                assert client.kernel("gemm").ok  # fleet warm and serving
                before = {
                    proc["index"]: proc["pid"]
                    for proc in client.healthz().worker_processes
                }
                assert len(before) == 2
                thread.reload()
                health = client.healthz()
                assert health.status == "ok" and not health.draining
                after = {
                    proc["index"]: proc["pid"]
                    for proc in health.worker_processes
                }
                assert set(after) == set(before)
                assert all(after[i] != before[i] for i in before), (
                    "reload must re-fork every worker"
                )
                assert all(
                    proc["alive"] for proc in health.worker_processes
                )
                # the new fleet serves, and the store survived the re-fork:
                # gemm needs no fresh solve
                record = client.kernel("gemm")
                assert record.ok

    def test_reload_retries_ride_out_the_drain(self):
        """A client with retries enabled sees a reload as latency, not
        an error (the 503 window is retried with backoff)."""
        with ServiceThread(ServiceConfig(workers=1)) as thread:
            client = ServiceClient(
                port=thread.port, retries=8, backoff=0.1
            )
            with client:
                assert client.kernel("gemm").ok
                reloader = threading.Thread(target=thread.reload)
                reloader.start()
                try:
                    # submitted mid-reload: either before the drain flips on
                    # (runs immediately) or rejected+retried until the new
                    # fleet is up -- never an exception
                    assert client.kernel("atax").ok
                finally:
                    reloader.join(timeout=300)


class TestWarmBoot:
    def test_warm_boot_serves_corpus_without_cold_solves(self):
        config = ServiceConfig(workers=2, warm=WARM_KERNELS)
        with ServiceThread(config) as thread:
            with ServiceClient(port=thread.port) as client:
                _wait_until(
                    lambda: (client.healthz().warm or {}).get("active") is False,
                    timeout=300,
                    message="warm-up completion",
                )
                health = client.healthz()
                assert health.warm["completed"] == len(WARM_KERNELS)
                solves_before = _fresh_solves(client)
                for name in WARM_KERNELS:
                    record = client.kernel(name)
                    assert record.ok
                    assert record.result["kernel"] == name
                assert _fresh_solves(client) == solves_before, (
                    "a warm kernel request hit the solver"
                )
                report_cache = client.metrics()["report_cache"]
                assert report_cache["hits"] >= len(WARM_KERNELS)

    def test_warm_state_in_healthz_while_warming(self):
        config = ServiceConfig(workers=1, warm=WARM_KERNELS)
        with ServiceThread(config) as thread:
            with ServiceClient(port=thread.port) as client:
                health = client.healthz()
                assert health.warm is not None
                assert health.warm["kernels"] == len(WARM_KERNELS)


class TestCrossWorkerDeterminism:
    def test_every_worker_reports_byte_identical_to_direct(self):
        """The acceptance check: the same request through *different*
        worker processes equals a direct in-process analyze_kernel."""
        config = ServiceConfig(workers=2, coalesce=False, report_cache=False)
        direct = _strip_volatile(kernel_report(analyze_kernel("atax")))
        with ServiceThread(config) as thread:
            with ServiceClient(port=thread.port) as client:
                # enough duplicates that both dispatchers take at least one
                records = [
                    client.kernel("atax", wait=False) for _ in range(6)
                ]
                finished = [
                    client.wait_for(r.id, timeout=300) for r in records
                ]
                workers_used = {
                    proc["index"]
                    for proc in client.healthz().worker_processes
                    if proc["jobs"] > 0
                }
                assert workers_used == {0, 1}, (
                    f"expected both workers to serve, got {workers_used}"
                )
                for record in finished:
                    assert record.ok
                    assert _strip_volatile(record.result) == direct


class TestSolveOnceInvariant:
    def test_store_has_exactly_one_entry_per_signature(self):
        """Fleet invariant: fresh solves == store writes == store rows."""
        config = ServiceConfig(workers=2, coalesce=False)
        with ServiceThread(config) as thread:
            with ServiceClient(port=thread.port) as client:
                names = ("gemm", "atax", "gemm", "atax", "mvt", "gemm")
                records = [client.kernel(n, wait=False) for n in names]
                for record in records:
                    assert client.wait_for(record.id, timeout=300).ok
                store = client.metrics()["store"]
                assert store["entries"] > 0
                assert store["stores"] == store["entries"], (
                    "a signature was solved more than once across the fleet"
                )


def _fresh_solves(client: ServiceClient) -> int:
    health = client.healthz()
    return sum(
        sum(buckets.values()) for buckets in health.solver_stats.values()
    )
