"""Section 5.2 versioning projection tests."""

import sympy as sp

from repro.kernels.common import ref, stmt
from repro.soap.projections import (
    apply_versioning,
    missing_output_vars,
    needs_versioning,
    to_soap,
    version_output,
)
from repro.ir.program import Program
from repro.symbolic.symbols import is_version_var


def _lu_update():
    return stmt(
        "lu",
        {"k": "N", "i": "N", "j": "N"},
        ref("A", "i,j"),
        ref("A", "i,j", "i,k", "k,j"),
    )


def _example1():
    return stmt(
        "stencil",
        {"t": "T", "i": "N"},
        ref("A", "i,t+1"),
        ref("A", "i-1,t", "i,t", "i+1,t"),
    )


class TestTriggers:
    def test_lu_needs_versioning(self):
        assert needs_versioning(_lu_update())
        assert missing_output_vars(_lu_update()) == ("k",)

    def test_offset_stencil_untouched(self):
        st = _example1()
        assert not needs_versioning(st)
        assert apply_versioning(st) is st

    def test_pure_producer_untouched(self):
        st = stmt("s", {"i": "N"}, ref("B", "i"), ref("A", "i"))
        assert not needs_versioning(st)

    def test_exact_self_assignment(self):
        st = stmt("s", {"i": "N"}, ref("A", "i"), ref("A", "i"))
        assert needs_versioning(st)


class TestRewrite:
    def test_lu_gains_version_dimension(self):
        rewritten = apply_versioning(_lu_update())
        assert rewritten.output.dim == 3
        write_version = rewritten.output.components[0][2]
        assert is_version_var(write_version.single_var)
        assert write_version.offset == 1
        read = rewritten.input_access("A")
        assert all(comp[2].offset == 0 for comp in read.components)

    def test_version_dim_not_counted_in_total(self):
        rewritten = apply_versioning(_lu_update())
        N = sp.Symbol("N", positive=True)
        assert sp.simplify(rewritten.vertex_count - N**3) == 0

    def test_accumulation_versions_by_reduction_var(self):
        gemm = stmt(
            "gemm",
            {"i": "N", "j": "N", "k": "N"},
            ref("C", "i,j"),
            ref("C", "i,j"),
            ref("A", "i,k"),
        )
        rewritten = apply_versioning(gemm)
        vname = rewritten.output.components[0][2].single_var
        from repro.symbolic.symbols import version_components

        assert version_components(vname) == ("k",)

    def test_multiple_missing_vars_in_one_version_dim(self):
        conv = stmt(
            "conv",
            {"k": "K", "h": "H", "r": "R", "s": "Q"},
            ref("Out", "k,h"),
            ref("Out", "k,h"),
            ref("F", "k,r,s"),
        )
        rewritten = apply_versioning(conv)
        from repro.symbolic.symbols import version_components

        vname = rewritten.output.components[0][2].single_var
        assert version_components(vname) == ("r", "s")

    def test_scalar_version_for_full_rank_self_assignment(self):
        st = stmt("s", {"i": "N"}, ref("A", "i"), ref("A", "i"))
        rewritten = apply_versioning(st)
        extra_write = rewritten.output.components[0][1]
        extra_read = rewritten.input_access("A").components[0][1]
        assert extra_write.is_constant and extra_write.offset == 1
        assert extra_read.is_constant and extra_read.offset == 0

    def test_force_versions_pure_producer(self):
        st = stmt("s", {"t": "T", "i": "N"}, ref("B", "i"), ref("A", "i"))
        rewritten = version_output(st, force=True)
        assert rewritten.output.dim == 2

    def test_other_arrays_untouched(self):
        rewritten = apply_versioning(_lu_update())
        assert rewritten.input_access("A").dim == 3


class TestProgramLevel:
    def test_to_soap_rewrites_all(self):
        stencil_z = stmt(
            "stencil",
            {"t": "T", "i": "N"},
            ref("Z", "i,t+1"),
            ref("Z", "i-1,t", "i,t", "i+1,t"),
        )
        program = Program.make("p", [_lu_update(), stencil_z])
        projected = to_soap(program)
        lu = projected.statements[0]
        stencil = projected.statements[1]
        assert lu.output.dim == 3  # gains the version dimension
        assert stencil.output.dim == 2  # offset stencil untouched
