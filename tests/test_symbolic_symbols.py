"""Symbol factories and the version-variable convention."""

import pytest
import sympy as sp

from repro.symbolic.symbols import (
    S_SYM,
    expand_version_tiles,
    is_tile,
    is_version_var,
    param,
    tile,
    tile_name,
    version_components,
    version_var_name,
)


class TestFactories:
    def test_param_is_cached(self):
        assert param("N") is param("N")

    def test_param_reserved_names(self):
        with pytest.raises(ValueError):
            param("S")
        with pytest.raises(ValueError):
            param("X")

    def test_param_positive(self):
        assert param("N").is_positive

    def test_tile_naming_round_trip(self):
        assert tile_name(tile("i")) == "i"

    def test_tile_name_rejects_non_tile(self):
        with pytest.raises(ValueError):
            tile_name(param("N"))

    def test_is_tile(self):
        assert is_tile(tile("i"))
        assert not is_tile(param("N"))
        assert not is_tile(S_SYM)


class TestVersionVars:
    def test_name_round_trip(self):
        name = version_var_name(["k"])
        assert is_version_var(name)
        assert version_components(name) == ("k",)

    def test_multi_component(self):
        name = version_var_name(["c", "r", "s"])
        assert version_components(name) == ("c", "r", "s")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            version_var_name([])

    def test_components_of_plain_name_rejected(self):
        with pytest.raises(ValueError):
            version_components("k")

    def test_expand_single(self):
        expr = tile(version_var_name(["k"])) * tile("i")
        assert sp.simplify(expand_version_tiles(expr) - tile("k") * tile("i")) == 0

    def test_expand_product(self):
        expr = tile(version_var_name(["r", "s"]))
        expanded = expand_version_tiles(expr)
        assert sp.simplify(expanded - tile("r") * tile("s")) == 0

    def test_expand_leaves_plain_tiles(self):
        expr = tile("i") * tile("j")
        assert expand_version_tiles(expr) == expr
