"""Python frontend: parsing, lowering, error reporting."""

import pytest
import sympy as sp

from repro.frontend.python_frontend import parse_python
from repro.util.errors import FrontendError

N = sp.Symbol("N", positive=True)
T = sp.Symbol("T", positive=True)


class TestParsing:
    def test_gemm(self):
        program = parse_python(
            "for i in range(N):\n"
            "    for j in range(N):\n"
            "        for k in range(N):\n"
            "            C[i, j] = C[i, j] + A[i, k] * B[k, j]\n"
        )
        (st,) = program.statements
        assert st.output.array == "C"
        assert {a.array for a in st.inputs} == {"A", "B", "C"}
        assert sp.simplify(st.domain.total - N**3) == 0

    def test_augmented_assignment_reads_target(self):
        program = parse_python(
            "for i in range(N):\n"
            "    for j in range(N):\n"
            "        s[i] += A[i, j]\n"
        )
        (st,) = program.statements
        assert st.input_access("s") is not None

    def test_stencil_offsets(self):
        program = parse_python(
            "for t in range(1, T):\n"
            "    for i in range(t, N - t):\n"
            "        A[i, t + 1] = (A[i - 1, t] + A[i, t] + A[i + 1, t]) / 3\n"
        )
        (st,) = program.statements
        assert st.input_access("A").n_components == 3

    def test_triangular_total_and_guard(self):
        program = parse_python(
            "for k in range(N):\n"
            "    for i in range(k + 1, N):\n"
            "        L[i, k] = A[i, k]\n"
        )
        (st,) = program.statements
        lead = sp.expand(st.domain.total)
        assert sp.expand(lead - (N**2 / 2 - N / 2)) == 0
        assert st.guard is not None and "k + 1" in st.guard

    def test_extent_cap_maximizes_over_outer(self):
        program = parse_python(
            "for t in range(1, T):\n"
            "    for i in range(t, N - t):\n"
            "        A[i, t + 1] = A[i, t]\n"
        )
        (st,) = program.statements
        assert sp.simplify(st.domain.extent("i") - (N - 1)) == 0

    def test_scalars_ignored(self):
        program = parse_python(
            "for i in range(N):\n"
            "    y[i] = alpha * x[i] + beta\n"
        )
        (st,) = program.statements
        assert {a.array for a in st.inputs} == {"x"}

    def test_calls_recursed(self):
        program = parse_python(
            "for i in range(N):\n"
            "    y[i] = min(x[i], z[i])\n"
        )
        (st,) = program.statements
        assert {a.array for a in st.inputs} == {"x", "z"}

    def test_multiple_statements_in_shared_loop(self):
        program = parse_python(
            "for t in range(T):\n"
            "    for i in range(N):\n"
            "        B[i] = A[i]\n"
            "    for i in range(N):\n"
            "        A[i] = B[i]\n"
        )
        assert len(program.statements) == 2
        assert program.statements[0].iteration_vars == ("t", "i")

    def test_coefficient_indices(self):
        program = parse_python(
            "for i in range(N):\n"
            "    for p in range(2):\n"
            "        y[i] = x[2 * i + p]\n"
        )
        (st,) = program.statements
        idx = st.input_access("x").components[0][0]
        assert idx.evaluate({"i": 3, "p": 1}) == 7


class TestErrors:
    def test_invalid_python(self):
        with pytest.raises(FrontendError):
            parse_python("for i in range(N)\n    pass")

    def test_non_range_loop(self):
        with pytest.raises(FrontendError):
            parse_python("for i in items:\n    A[i] = B[i]\n")

    def test_statement_outside_loop(self):
        with pytest.raises(FrontendError):
            parse_python("A[0] = B[0]\n")

    def test_empty_program(self):
        with pytest.raises(FrontendError):
            parse_python("for i in range(N):\n    pass\n")

    def test_non_affine_index(self):
        with pytest.raises(FrontendError):
            parse_python("for i in range(N):\n    A[i] = B[i * i]\n")

    def test_scalar_target(self):
        with pytest.raises(FrontendError):
            parse_python("for i in range(N):\n    s = A[i]\n")

    def test_unknown_construct(self):
        with pytest.raises(FrontendError):
            parse_python("for i in range(N):\n    while True:\n        A[i] = B[i]\n")
