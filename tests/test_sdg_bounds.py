"""Theorem 1 end-to-end on small programs."""

import sympy as sp

from repro.ir.array import Array
from repro.ir.program import Program
from repro.kernels.common import ref, stmt
from repro.sdg.bounds import io_footprint_floor, sdg_bound
from repro.symbolic.symbols import S_SYM

N = sp.Symbol("N", positive=True)
M = sp.Symbol("M", positive=True)
T = sp.Symbol("T", positive=True)


def test_single_statement_matches_hong_kung():
    gemm = stmt(
        "gemm",
        {"i": "N", "j": "N", "k": "N"},
        ref("C", "i,j"),
        ref("C", "i,j"),
        ref("A", "i,k"),
        ref("B", "k,j"),
    )
    result = sdg_bound(Program.make("gemm", [gemm]))
    assert sp.simplify(result.bound - 2 * N**3 / sp.sqrt(S_SYM)) == 0


def test_reuse_between_statements_atax():
    first = stmt(
        "Ax", {"i": "M", "j": "N"},
        ref("tmp", "i"), ref("tmp", "i"), ref("A", "i,j"), ref("x", "j"),
    )
    second = stmt(
        "Aty", {"i": "M", "j": "N"},
        ref("y", "j"), ref("y", "j"), ref("A", "i,j"), ref("tmp", "i"),
    )
    result = sdg_bound(Program.make("atax", [first, second]))
    assert sp.simplify(result.bound - M * N) == 0
    # both arrays' best subgraph is the fused pair with intensity 2
    for analysis in result.per_array.values():
        assert set(analysis.arrays) == {"tmp", "y"}
        assert analysis.rho == 2


def test_per_array_maxima_are_independent():
    # C is MMM-like (rho ~ sqrt(S)); z is bandwidth-bound (rho ~ 1).
    mm = stmt(
        "mm", {"i": "N", "j": "N", "k": "N"},
        ref("C", "i,j"), ref("C", "i,j"), ref("A", "i,k"), ref("B", "k,j"),
    )
    copy = stmt("cp", {"i2": "N", "j2": "N"}, ref("z", "i2,j2"), ref("W", "i2,j2"))
    result = sdg_bound(Program.make("p", [mm, copy]))
    # leading order keeps the dominating MMM term; the full per-array sum
    # retains the copy's N^2 contribution.
    assert sp.simplify(result.bound - 2 * N**3 / sp.sqrt(S_SYM)) == 0
    assert sp.simplify(
        sp.expand(result.bound_full) - sp.expand(2 * N**3 / sp.sqrt(S_SYM) + N**2)
    ) == 0


def test_streaming_update_pair_stays_analyzable():
    """Gram-Schmidt-style mutually-updating pair: the boundary (streaming)
    optimum is rejected; the interior-only analysis keeps every array
    bounded (via the fused pair's stationary point or the singletons)."""
    rr = stmt(
        "rrow", {"k": "N", "j": "N", "i": "M"},
        ref("R", "k,j"), ref("R", "k,j"), ref("Q", "i,k"), ref("Aa", "i,j"),
    )
    au = stmt(
        "aupd", {"k2": "N", "j2": "N", "i2": "M"},
        ref("Aa", "i2,j2"), ref("Aa", "i2,j2"), ref("Q", "i2,k2"), ref("R", "k2,j2"),
    )
    result = sdg_bound(Program.make("gs", [rr, au]))
    assert set(result.per_array) == {"R", "Aa"}
    # Intensities stay sqrt(S)-scale (never the boundary S-scale streaming).
    for analysis in result.per_array.values():
        ratio = sp.simplify(analysis.rho / sp.sqrt(S_SYM))
        assert not ratio.free_symbols, analysis.rho


def test_io_floor_counts_inputs_and_dead_outputs():
    s = stmt("s", {"i": "N", "j": "N"}, ref("out", "i,j"), ref("inp", "i,j"))
    program = Program.make(
        "p", [s], [Array("inp", 2, N**2), Array("out", 2, N**2)]
    )
    floor = io_footprint_floor(program)
    assert sp.simplify(floor - 2 * N**2) == 0


def test_io_floor_skips_read_outputs_and_undeclared():
    s1 = stmt("s1", {"i": "N"}, ref("mid", "i"), ref("inp", "i"))
    s2 = stmt("s2", {"i2": "N"}, ref("out", "i2"), ref("mid", "i2"))
    program = Program.make("p", [s1, s2], [Array("inp", 1, N)])
    floor = io_footprint_floor(program)
    assert sp.simplify(floor - N) == 0  # mid is read; out undeclared


def test_combined_takes_max_of_theorem_and_floor():
    s = stmt("s", {"i": "N", "j": "N"}, ref("out", "i,j"), ref("inp", "i,j"))
    program = Program.make(
        "p", [s], [Array("inp", 2, N**2), Array("out", 2, N**2)]
    )
    result = sdg_bound(program)
    combined = sp.simplify(result.combined)
    assert sp.simplify(combined - sp.Max(result.bound, 2 * N**2)) == 0


def test_time_tiled_stencil_pair():
    b = stmt("sb", {"t": "T", "i": "N"}, ref("B", "i"), ref("A", "i-1", "i", "i+1"))
    a = stmt("sa", {"t": "T", "i": "N"}, ref("A", "i"), ref("B", "i-1", "i", "i+1"))
    result = sdg_bound(Program.make("jacobi", [b, a]))
    assert sp.simplify(result.bound - 4 * N * T / S_SYM) == 0
