"""ProblemIR: lossless conversion, interning, and rational linear algebra."""

from fractions import Fraction

import pytest
import sympy as sp

from repro.opt.problem import (
    ProblemIR,
    nullspace_rational,
    rationalize,
    solve_rational,
)
from repro.symbolic.posynomial import Monomial, Posynomial
from repro.symbolic.symbols import tile

N = sp.Symbol("N", positive=True)
M = sp.Symbol("M", positive=True)
bi, bj, bk = tile("i"), tile("j"), tile("k")


def _posy(expr, variables):
    return Posynomial.from_expr(expr, variables)


class TestPosynomialRoundTrip:
    @pytest.mark.parametrize(
        "expr",
        [
            bi * bj * bk,
            bi * bk + bk * bj + bi * bj,
            2 * bi * bj + 3 * bi,
            N * bi * bj + M * bk + (N + M) * bi,
        ],
    )
    def test_from_expr_of_expr_is_identity(self, expr):
        posy = _posy(expr, [bi, bj, bk])
        assert Posynomial.from_expr(posy.expr, [bi, bj, bk]) == posy

    def test_rational_exponents_round_trip(self):
        # Rational exponents only arise from monomial arithmetic, never
        # parsing -- build one by hand and round-trip through the IR.
        half = Posynomial([Monomial.make(sp.Integer(2), {bi: sp.Rational(3, 2)})])
        ir = ProblemIR.from_posynomials(half, half, {})
        assert ir.objective_posynomial() == half
        assert ir.objective[0].exponents == (Fraction(3, 2),)

    def test_equality_is_structural(self):
        a = _posy(2 * bi * bj + bi, [bi, bj])
        b = Posynomial(
            [
                Monomial.make(sp.Integer(1), {bi: 1}),
                Monomial.make(sp.Integer(1), {bi: 1, bj: 1}),
                Monomial.make(sp.Integer(1), {bi: 1, bj: 1}),
            ]
        )
        assert a == b  # merged duplicate + reordered terms
        assert hash(a) == hash(b)
        assert a != _posy(2 * bi * bj, [bi, bj])


class TestProblemIR:
    def test_lossless_conversion(self):
        objective = _posy(bi * bj * bk, [bi, bj, bk])
        constraint = _posy(N * bi * bk + bk * bj + 2 * bi * bj, [bi, bj, bk])
        ir = ProblemIR.from_posynomials(objective, constraint, {"i": N, "j": M})
        assert ir.objective_posynomial() == objective
        assert ir.constraint_posynomial() == constraint
        assert ir.extents_dict() == {"i": N, "j": M}
        assert ir.variables == ("i", "j", "k")

    def test_coefficients_interned(self):
        constraint = _posy(2 * bi + 2 * bj + 2 * bk, [bi, bj, bk])
        ir = ProblemIR.from_posynomials(_posy(bi * bj * bk, [bi, bj, bk]), constraint, {})
        # one distinct "1" (objective) and one distinct "2" (all constraint terms)
        assert len(ir.coeffs) == 2
        assert len({term.coeff for term in ir.constraint}) == 1

    def test_coeff_floats_none_for_symbolic(self):
        constraint = _posy(N * bi + 2 * bj, [bi, bj])
        ir = ProblemIR.from_posynomials(_posy(bi * bj, [bi, bj]), constraint, {})
        by_key = dict(zip(ir.coeff_keys, ir.coeff_floats))
        assert by_key[sp.srepr(sp.sympify(N))] is None
        assert by_key[sp.srepr(sp.Integer(2))] == 2.0

    def test_structure_key_ignores_coefficients(self):
        obj = _posy(bi * bj, [bi, bj])
        a = ProblemIR.from_posynomials(obj, _posy(bi + bj, [bi, bj]), {})
        b = ProblemIR.from_posynomials(obj, _posy(5 * bi + N * bj, [bi, bj]), {})
        assert a.structure_key() == b.structure_key()
        c = ProblemIR.from_posynomials(obj, _posy(bi * bj + bj, [bi, bj]), {})
        assert a.structure_key() != c.structure_key()

    def test_constrained_columns(self):
        ir = ProblemIR.from_posynomials(
            _posy(bi * bj * bk, [bi, bj, bk]), _posy(bi + bk, [bi, bk]), {}
        )
        flags = dict(zip(ir.variables, ir.constrained_columns()))
        assert flags == {"i": True, "j": False, "k": True}

    def test_renamed_and_permuted(self):
        ir = ProblemIR.from_posynomials(
            _posy(bi * bj, [bi, bj]), _posy(bi + 2 * bj, [bi, bj]), {"i": N}
        )
        renamed = ir.renamed({"i": "c0", "j": "c1"})
        assert renamed.variables == ("c0", "c1")
        assert dict(renamed.extents) == {"c0": N}
        flipped = renamed.permuted([1, 0])
        assert flipped.variables == ("c1", "c0")
        # same posynomial content under the new column order
        assert flipped.constraint_posynomial() == Posynomial(
            [
                Monomial.make(sp.Integer(2), {tile("c1"): 1}),
                Monomial.make(sp.Integer(1), {tile("c0"): 1}),
            ]
        )


class TestRationalLinearAlgebra:
    def test_determined_system(self):
        rows = [[Fraction(1), Fraction(1)], [Fraction(1), Fraction(-1)]]
        values = solve_rational(rows, [Fraction(3), Fraction(1)])
        assert values == [Fraction(2), Fraction(1)]

    def test_underdetermined_uses_hints(self):
        rows = [[Fraction(1), Fraction(1), Fraction(0)]]
        values = solve_rational(
            rows, [Fraction(1)], hints=[None, Fraction(1, 3), Fraction(7)]
        )
        assert values is not None
        assert values[1] == Fraction(1, 3)
        assert values[0] + values[1] == 1
        assert values[2] == Fraction(7)

    def test_inconsistent_returns_none(self):
        rows = [[Fraction(1), Fraction(1)], [Fraction(2), Fraction(2)]]
        assert solve_rational(rows, [Fraction(1), Fraction(3)]) is None

    def test_nullspace(self):
        rows = [[Fraction(1), Fraction(1)]]
        basis = nullspace_rational(rows)
        assert len(basis) == 1
        z = basis[0]
        assert z[0] + z[1] == 0 and z != [0, 0]
        full_rank = [[Fraction(1), Fraction(0)], [Fraction(0), Fraction(1)]]
        assert nullspace_rational(full_rank) == []

    def test_rationalize(self):
        assert rationalize(0.3333333333) == Fraction(1, 3)
        assert rationalize(0.5) == Fraction(1, 2)
