"""Lemma 3 / Corollary 1 access-size bounds, property-tested against brute force."""

import itertools

import pytest
import sympy as sp
from hypothesis import given, settings, strategies as st

from repro.cdag.counting import access_set_size_bruteforce, hyperrectangle_union_size
from repro.ir.access import ArrayAccess
from repro.kernels.common import ref
from repro.soap.access_size import access_size, access_size_leading, group_constraint_terms
from repro.soap.classify import classify_access
from repro.symbolic.symbols import tile


def _eval(expr, sizes):
    return expr.subs({tile(v): s for v, s in sizes.items()})


class TestClosedForms:
    def test_single_component(self):
        (g,) = classify_access(ref("A", "i,k"))
        assert sp.simplify(access_size(g) - tile("i") * tile("k")) == 0

    def test_three_point_stencil(self):
        (g,) = classify_access(ref("A", "i-1,t", "i,t", "i+1,t"))
        bi, bt = tile("i"), tile("t")
        expected = 2 * bi * bt - (bi - 2) * bt
        assert sp.simplify(access_size(g) - sp.expand(expected)) == 0

    def test_inout_corollary(self):
        out = ref("A", "i,t+1").components[0]
        (g,) = classify_access(ref("A", "i-1,t", "i,t", "i+1,t"), out)
        bi, bt = tile("i"), tile("t")
        expected = bi * bt - (bi - 2) * (bt - 1)
        assert sp.simplify(access_size(g) - sp.expand(expected)) == 0

    def test_repeated_variable_counts_distinct_tiles_once(self):
        # LU diagonal-style access [i, k, version(k)] must cost b_i * b_k.
        from repro.ir.access import AffineIndex
        from repro.symbolic.symbols import version_var_name

        comp = (
            AffineIndex.var("i"),
            AffineIndex.var("k"),
            AffineIndex.var(version_var_name(["k"])),
        )
        (g,) = classify_access(ArrayAccess("A", (comp,)))
        assert sp.simplify(access_size(g) - tile("i") * tile("k")) == 0

    def test_constant_split_counts_components(self):
        (g,) = classify_access(ref("A", "0,j", "1,j", "2,j"))
        # three disjoint constant rows -> 3 * b_j
        assert sp.simplify(access_size(g) - 3 * tile("j")) == 0

    def test_minkowski_sumset_dimension(self):
        (g,) = classify_access(ref("Img", "r+w,c"))
        br, bw, bc = tile("r"), tile("w"), tile("c")
        assert sp.simplify(access_size(g) - sp.expand((br + bw - 1) * bc)) == 0

    def test_leading_of_stencil_is_surface(self):
        out = ref("A", "i,t+1").components[0]
        (g,) = classify_access(ref("A", "i-1,t", "i,t", "i+1,t"), out)
        lead = access_size_leading(g)
        bi, bt = tile("i"), tile("t")
        assert sp.simplify(lead.expr - (bi + 2 * bt)) == 0


class TestGroupCombination:
    def test_sum_policy_adds_groups(self):
        groups = classify_access(ref("A", "i,k", "k,j"))
        posy = group_constraint_terms(groups, policy="sum")
        bi, bj, bk = tile("i"), tile("j"), tile("k")
        assert sp.simplify(posy.expr - (bi * bk + bk * bj)) == 0

    def test_max_policy_keeps_largest(self):
        groups = classify_access(ref("A", "i,k", "k,j"))
        posy = group_constraint_terms(groups, policy="max")
        assert len(posy) == 1

    def test_unknown_policy_rejected(self):
        groups = classify_access(ref("A", "i,k", "k,j"))
        with pytest.raises(ValueError):
            group_constraint_terms(groups, policy="median")

    def test_different_arrays_always_add(self):
        groups = classify_access(ref("A", "i")) + classify_access(ref("B", "j"))
        posy = group_constraint_terms(groups, policy="max")
        assert len(posy) == 2


# ---------------------------------------------------------------------------
# property-based soundness: closed form <= exact union size
# ---------------------------------------------------------------------------

_offsets = st.lists(
    st.tuples(st.integers(-3, 3), st.integers(-3, 3)),
    min_size=1,
    max_size=4,
    unique=True,
)
_sizes = st.tuples(st.integers(1, 5), st.integers(1, 5))


@given(offsets=_offsets, sizes=_sizes)
@settings(max_examples=120, deadline=None)
def test_lemma3_sound_against_bruteforce_2d(offsets, sizes):
    """2*prod(b) - prod(b - t̂) never exceeds the true minimal union."""
    from repro.ir.access import AffineIndex

    components = tuple(
        (AffineIndex.make({"i": 1}, oi), AffineIndex.make({"j": 1}, oj))
        for oi, oj in offsets
    )
    (group,) = classify_access(ArrayAccess("A", components))
    bound = int(_eval(access_size(group), {"i": sizes[0], "j": sizes[1]}))
    exact = hyperrectangle_union_size(offsets, sizes)
    assert bound <= exact


@given(
    offsets=st.lists(st.integers(-4, 4), min_size=1, max_size=5, unique=True),
    size=st.integers(1, 8),
)
@settings(max_examples=120, deadline=None)
def test_lemma3_sound_1d(offsets, size):
    from repro.ir.access import AffineIndex

    components = tuple((AffineIndex.make({"i": 1}, o),) for o in offsets)
    (group,) = classify_access(ArrayAccess("A", components))
    bound = int(_eval(access_size(group), {"i": size}))
    exact = hyperrectangle_union_size([(o,) for o in offsets], (size,))
    assert bound <= exact


def test_lemma3_tight_for_antipodal_arrangement():
    """Figure 3: two antipodal copies attain the bound exactly."""
    for b1, b2, t1, t2 in itertools.product((2, 3, 5), (2, 4), (1, 2), (1, 3)):
        translations = [(0, 0), (t1, t2)]
        exact = hyperrectangle_union_size(translations, (b1, b2))
        formula = 2 * b1 * b2 - max(b1 - t1, 0) * max(b2 - t2, 0)
        assert formula == exact


@given(
    d_i=st.lists(st.integers(0, 12), min_size=1, max_size=5, unique=True),
    d_k=st.lists(st.integers(0, 12), min_size=1, max_size=5, unique=True),
)
@settings(max_examples=100, deadline=None)
def test_minkowski_sumset_sound_for_arbitrary_sets(d_i, d_k):
    """|{k - i - 1}| >= |D_i| + |D_k| - 1 over arbitrary value sets."""
    exact = access_set_size_bruteforce(
        [((-1, 1, -1),)],  # one 1-d component: [-i + k - 1]
        [sorted(d_i), sorted(d_k)],
    )
    assert exact >= len(d_i) + len(d_k) - 1


@given(
    values=st.lists(st.integers(0, 20), min_size=1, max_size=6, unique=True),
    offsets=st.lists(st.integers(-2, 2), min_size=1, max_size=3, unique=True),
)
@settings(max_examples=100, deadline=None)
def test_lemma3_holds_for_noncontiguous_domains(values, offsets):
    """Lemma 3 is stated for arbitrary D_t subsets, not just intervals."""
    from repro.ir.access import AffineIndex

    components = tuple((AffineIndex.make({"i": 1}, o),) for o in offsets)
    (group,) = classify_access(ArrayAccess("A", components))
    bound = int(_eval(access_size(group), {"i": len(values)}))
    exact = access_set_size_bruteforce(
        [((1, o),) for o in offsets], [sorted(values)]
    )
    assert bound <= exact
