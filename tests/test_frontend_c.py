"""C frontend: lexer, parser, lowering."""

import pytest
import sympy as sp

from repro.frontend.c_frontend import parse_c
from repro.frontend.c_frontend.cparser import parse_source
from repro.frontend.c_frontend.astnodes import Assignment, ForLoop
from repro.frontend.c_frontend.lexer import tokenize
from repro.util.errors import FrontendError

N = sp.Symbol("N", positive=True)

LU = """
for (int k = 0; k < N; k++) {
  for (int i = k + 1; i < N; i++) {
    for (int j = k + 1; j < N; j++) {
      A[i][j] = A[i][j] - A[i][k] * A[k][j];
    }
  }
}
"""


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize("for (int i = 0; i < N; i++) A[i] += 2.5;")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "keyword" and kinds[-1] == "eof"
        texts = [t.text for t in tokens]
        assert "+=" in texts and "++" in texts and "2.5" in texts

    def test_comments_skipped(self):
        tokens = tokenize("// line\n/* block\nstill */ x")
        assert [t.text for t in tokens] == ["x", ""]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_unexpected_character(self):
        with pytest.raises(FrontendError):
            tokenize("a @ b")


class TestParser:
    def test_lu_structure(self):
        (outer,) = parse_source(LU)
        assert isinstance(outer, ForLoop) and outer.var == "k"
        inner = outer.body[0].body[0]
        assert isinstance(inner, ForLoop) and inner.var == "j"
        assert isinstance(inner.body[0], Assignment)

    def test_le_bound_normalized(self):
        (loop,) = parse_source("for (int i = 0; i <= N; i++) A[i] = B[i];")
        # stop is N + 1 (exclusive)
        program = parse_c("for (int i = 0; i <= N; i++) A[i] = B[i];")
        assert sp.simplify(program.statements[0].domain.extent("i") - (N + 1)) == 0

    def test_braceless_body(self):
        program = parse_c("for (int i = 0; i < N; i++) A[i] = B[i];")
        assert len(program.statements) == 1

    def test_augmented_ops(self):
        program = parse_c("for (int i = 0; i < N; i++) A[i] += B[i];")
        (st,) = program.statements
        assert st.input_access("A") is not None

    def test_calls(self):
        program = parse_c("for (int i = 0; i < N; i++) A[i] = sqrt(B[i]);")
        assert {a.array for a in program.statements[0].inputs} == {"B"}

    def test_condition_must_test_loop_var(self):
        with pytest.raises(FrontendError):
            parse_c("for (int i = 0; j < N; i++) A[i] = B[i];")

    def test_only_unit_stride(self):
        with pytest.raises(FrontendError):
            parse_c("for (int i = 0; i < N; i += 2) A[i] = B[i];")

    def test_assignment_target_must_be_array(self):
        with pytest.raises(FrontendError):
            parse_c("for (int i = 0; i < N; i++) s = A[i];")


class TestLowering:
    def test_lu_statement(self):
        program = parse_c(LU, name="lu")
        (st,) = program.statements
        assert st.output.array == "A"
        assert st.input_access("A").n_components == 3
        total = sp.expand(st.domain.total)
        assert sp.expand(total - (N**3 / 3 - N**2 + N - sp.expand(total - total))).has(N)
        # leading term is N^3/3
        assert sp.LT(total, gens=[N]) == N**3 / 3

    def test_guard_for_triangular(self):
        program = parse_c(LU)
        assert "k + 1" in program.statements[0].guard

    def test_matches_python_frontend(self):
        from repro.frontend.python_frontend import parse_python

        c_prog = parse_c(
            "for (int i = 0; i < N; i++)\n"
            "  for (int j = 0; j < N; j++)\n"
            "    C[i][j] += A[i][j];\n"
        )
        py_prog = parse_python(
            "for i in range(N):\n"
            "    for j in range(N):\n"
            "        C[i, j] += A[i, j]\n"
        )
        c_st, py_st = c_prog.statements[0], py_prog.statements[0]
        assert c_st.output.components == py_st.output.components
        assert sp.simplify(c_st.domain.total - py_st.domain.total) == 0
