"""X-partition validation (Section 2.2) on concrete CDAGs."""

import networkx as nx
import pytest

from repro.cdag.build import build_cdag
from repro.cdag.xpartition import check_x_partition, tiling_partition
from repro.ir.program import Program
from repro.kernels.common import ref, stmt


def _gemm_cdag(n: int):
    gemm = stmt(
        "gemm", {"i": "N", "j": "N", "k": "N"},
        ref("C", "i,j"), ref("C", "i,j"), ref("A", "i,k"), ref("B", "k,j"),
    )
    return build_cdag(Program.make("gemm", [gemm]), {"N": n})


def _point_of(vertex):
    if vertex[0] != "v":
        return None
    i, j = vertex[2]
    return {"i": i, "j": j, "k": vertex[3]}


class TestCheckXPartition:
    def test_whole_graph_is_a_valid_partition(self):
        cdag = _gemm_cdag(2)
        computed = set(cdag.vertices_of("C"))
        report = check_x_partition(cdag.graph, [computed], x=20)
        assert report.valid, report.violations
        assert report.n_subcomputations == 1

    def test_dominator_budget_violation_detected(self):
        cdag = _gemm_cdag(2)
        computed = set(cdag.vertices_of("C"))
        report = check_x_partition(cdag.graph, [computed], x=3)
        assert not report.valid
        assert any("Dom_min" in v for v in report.violations)

    def test_missing_coverage_detected(self):
        cdag = _gemm_cdag(2)
        computed = list(cdag.vertices_of("C"))
        report = check_x_partition(cdag.graph, [set(computed[:4])], x=20)
        assert not report.valid
        assert any("cover" in v for v in report.violations)

    def test_overlap_detected(self):
        cdag = _gemm_cdag(2)
        computed = list(cdag.vertices_of("C"))
        parts = [set(computed), set(computed[:1])]
        report = check_x_partition(cdag.graph, parts, x=20)
        assert not report.valid

    def test_cycle_between_subcomputations_detected(self):
        g = nx.DiGraph([("in", "a"), ("a", "b"), ("b", "c"), ("c", "d")])
        # interleaved ownership a,c vs b,d creates a -> b -> c quotient cycle?
        # a->b (P0->P1), b->c (P1->P0), so quotient has 0->1 and 1->0.
        report = check_x_partition(g, [{"a", "c"}, {"b", "d"}], x=10)
        assert not report.valid
        assert any("cyclic" in v for v in report.violations)

    def test_input_vertices_rejected_in_parts(self):
        g = nx.DiGraph([("in", "a")])
        report = check_x_partition(g, [{"in", "a"}], x=10)
        assert not report.valid

    def test_implied_bound(self):
        cdag = _gemm_cdag(2)
        partition = tiling_partition(
            cdag.vertices_of("C"), _point_of, {"i": 1, "j": 1, "k": 2}, ["i", "j", "k"]
        )
        report = check_x_partition(cdag.graph, partition, x=6)
        assert report.valid, report.violations
        assert report.implied_bound(x=6, s=2) == (6 - 2) * (len(partition) - 1)

    def test_implied_bound_requires_validity(self):
        cdag = _gemm_cdag(2)
        report = check_x_partition(cdag.graph, [set(cdag.vertices_of("C"))], x=1)
        with pytest.raises(ValueError):
            report.implied_bound(x=1, s=1)


class TestDerivedTilingIsValidPartition:
    def test_gemm_sqrt_s_tiling(self):
        """The analyzer's sqrt(S) x sqrt(S) x sqrt(S) tiling forms a valid
        X-partition at X ~ 3S -- the constructive side of the paper."""
        n, s = 4, 4  # tile = sqrt(4) = 2; X0 = 3S = 12
        cdag = _gemm_cdag(n)
        tile = 2
        partition = tiling_partition(
            cdag.vertices_of("C"), _point_of,
            {"i": tile, "j": tile, "k": tile}, ["i", "j", "k"],
        )
        report = check_x_partition(cdag.graph, partition, x=3 * s)
        assert report.valid, report.violations
        # Each tile's dominator: 3 faces of 2x2 = 12 = X0 at most.
        assert report.max_dominator <= 3 * s
