"""Out-of-core replay pipeline: chunked == monolithic, bit for bit.

Three contracts cover the whole chunked path:

1. **Chunked stream build** (``single_statement_stream(chunk_positions=...)``,
   optionally memmap-backed) produces arrays *identical* to the monolithic
   lexsort build -- same ids, same offsets, same store markers -- for every
   chunk size, including degenerate ones (1, a prime, larger than the
   stream).
2. **Chunked two-pass next-use** equals the monolithic argsort table.
3. **Slab-driven native replay** equals the whole-stream replay and the
   pure-Python reference, for Belady and LRU, at every slab size.

Plus the zero-copy shared-stream layer (publish/attach round-trips, cached
attaches, the parallel sweep building each stream exactly once) and the
satellite knobs: native-core cache-dir resolution and jobs / chunk-size
validation at every entry point.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import get_kernel
from repro.schedule import shared_streams
from repro.schedule.simulator import _replay, simulate_io
from repro.schedule.stream import ScheduleError, single_statement_stream

#: (kernel, params, tile_sizes, variable_order) -- single-statement kernels
#: with known-legal blocked orders, covering tiled/untiled, multi-array
#: reads, strided accesses, and reduction dimensions
STREAM_CASES = [
    ("gemm", {"N": 6}, {"i": 2, "j": 3, "k": 2}, ["i", "j", "k"]),
    ("gemm", {"N": 5}, None, None),
    ("syrk", {"M": 4, "N": 4}, {"i": 2, "j": 2}, None),
    (
        "conv",
        {"B": 1, "Cin": 2, "Cout": 2, "Wout": 3, "Hout": 3,
         "Wker": 2, "Hker": 2},
        {"k": 2, "w": 2, "h": 2},
        None,
    ),
]

CHUNK_SIZES = [1, 7, 4096, 10**9]


def _build(case, **kwargs):
    name, params, tiles, order = case
    return single_statement_stream(
        get_kernel(name).build(), params,
        tile_sizes=tiles, variable_order=order, **kwargs
    )


def assert_streams_identical(a, b):
    assert a.n_positions == b.n_positions
    assert a.n_ids == b.n_ids
    for fname in ("parent_offsets", "parent_ids", "computed_ids",
                  "starts_blue", "store_at_compute"):
        np.testing.assert_array_equal(
            np.asarray(getattr(a, fname)), np.asarray(getattr(b, fname)),
            err_msg=fname,
        )


class TestChunkedBuildBitIdentical:
    @pytest.mark.parametrize("case", STREAM_CASES, ids=lambda c: c[0])
    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_matches_monolithic(self, case, chunk):
        mono = _build(case)
        chunked = _build(case, chunk_positions=chunk)
        assert_streams_identical(mono, chunked)

    def test_memmap_backed_build_identical(self, tmp_path):
        case = STREAM_CASES[0]
        mono = _build(case)
        mapped = _build(case, chunk_positions=64, memmap_dir=str(tmp_path))
        assert_streams_identical(mono, mapped)

    def test_memmap_dir_true_uses_system_tmp(self):
        case = STREAM_CASES[0]
        mono = _build(case)
        mapped = _build(case, memmap_dir=True)
        assert_streams_identical(mono, mapped)

    def test_guarded_stream_identical(self):
        import dataclasses

        from repro.ir.program import Program

        base = get_kernel("gemm").build()
        st_ = base.statements[0]
        guarded = Program(
            name="tri",
            statements=[dataclasses.replace(st_, guard="i <= j")],
        )
        mono = single_statement_stream(guarded, {"N": 6})
        for chunk in CHUNK_SIZES:
            chunked = single_statement_stream(
                guarded, {"N": 6}, chunk_positions=chunk
            )
            assert_streams_identical(mono, chunked)

    def test_illegal_tiling_raises_in_both_paths(self):
        # tiling the reduction variable r of conv reorders version chains
        program = get_kernel("conv").build()
        params = {"B": 1, "Cin": 2, "Cout": 2, "Wout": 3, "Hout": 3,
                  "Wker": 2, "Hker": 2}
        with pytest.raises(ScheduleError):
            single_statement_stream(
                program, params, tile_sizes={"r": 2, "s": 1}
            )
        with pytest.raises(ScheduleError):
            single_statement_stream(
                program, params, tile_sizes={"r": 2, "s": 1},
                chunk_positions=7,
            )

    def test_chunk_size_validated(self):
        with pytest.raises(ScheduleError):
            _build(STREAM_CASES[0], chunk_positions=0)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=6),
        tile=st.integers(min_value=1, max_value=4),
        chunk=st.integers(min_value=1, max_value=300),
    )
    def test_random_instances_identical(self, n, tile, chunk):
        program = get_kernel("gemm").build()
        tiles = {"i": tile, "j": tile, "k": tile}
        mono = single_statement_stream(program, {"N": n}, tile_sizes=tiles)
        chunked = single_statement_stream(
            program, {"N": n}, tile_sizes=tiles, chunk_positions=chunk
        )
        assert_streams_identical(mono, chunked)


class TestChunkedNextUse:
    @pytest.mark.parametrize("case", STREAM_CASES, ids=lambda c: c[0])
    @pytest.mark.parametrize("chunk", CHUNK_SIZES)
    def test_matches_monolithic(self, case, chunk):
        mono_na, mono_fu = _build(case).next_use_arrays()
        chunk_na, chunk_fu = _build(case).next_use_arrays(
            chunk_positions=chunk
        )
        np.testing.assert_array_equal(mono_na, np.asarray(chunk_na))
        np.testing.assert_array_equal(mono_fu, np.asarray(chunk_fu))

    def test_chunked_stream_defaults_to_chunked_next_use(self):
        stream = _build(STREAM_CASES[0], chunk_positions=16)
        mono = _build(STREAM_CASES[0])
        na, fu = stream.next_use_arrays()
        mono_na, mono_fu = mono.next_use_arrays()
        np.testing.assert_array_equal(mono_na, np.asarray(na))
        np.testing.assert_array_equal(mono_fu, np.asarray(fu))


class TestSlabReplay:
    @pytest.mark.parametrize("case", STREAM_CASES[:2], ids=lambda c: c[0])
    @pytest.mark.parametrize("policy", ["belady", "lru"])
    @pytest.mark.parametrize("slab", [1, 7, 64, 10**9])
    def test_matches_whole_stream_and_python(self, case, policy, slab):
        stream = _build(case)
        for s in (10, 14):
            whole = simulate_io(stream, s, policy=policy)
            slabbed = simulate_io(
                stream, s, policy=policy, slab_positions=slab
            )
            python = _replay(stream, s, belady=policy == "belady")
            assert (slabbed.cost, slabbed.loads, slabbed.stores,
                    slabbed.evictions) == (
                whole.cost, whole.loads, whole.stores, whole.evictions
            )
            assert slabbed.cost == python.cost

    def test_chunk_built_stream_replays_identically(self):
        mono = _build(STREAM_CASES[0])
        chunked = _build(STREAM_CASES[0], chunk_positions=7)
        for policy in ("belady", "lru"):
            assert (
                simulate_io(chunked, 12, policy=policy,
                            slab_positions=7).cost
                == simulate_io(mono, 12, policy=policy).cost
            )

    def test_too_small_s_raises_through_slab_path(self):
        from repro.util.errors import PebblingError

        stream = _build(STREAM_CASES[0])
        with pytest.raises(PebblingError):
            simulate_io(stream, 2, slab_positions=8)


class TestSharedStreams:
    def test_publish_attach_round_trip(self):
        stream = _build(STREAM_CASES[0])
        ref = shared_streams.publish(
            stream, shared_streams.stream_signature("gemm", "t")
        )
        try:
            attached = shared_streams.attach(ref)
            assert_streams_identical(stream, attached)
            assert not attached.parent_ids.flags.writeable
            # the next-use memo travels with the segment: no recompute
            na, fu = attached.next_use_arrays()
            mono_na, mono_fu = stream.next_use_arrays()
            np.testing.assert_array_equal(mono_na, np.asarray(na))
            np.testing.assert_array_equal(mono_fu, np.asarray(fu))
            # replay over the attached views works read-only
            assert (
                simulate_io(attached, 12).cost == simulate_io(stream, 12).cost
            )
        finally:
            shared_streams.detach_all()
            shared_streams.unlink(ref)

    def test_attach_cached_maps_each_segment_once(self):
        stream = _build(STREAM_CASES[0])
        ref = shared_streams.publish(
            stream, shared_streams.stream_signature("gemm", "cache")
        )
        try:
            shared_streams.detach_all()
            before = shared_streams._ATTACH_COUNT
            first = shared_streams.attach_cached(ref)
            second = shared_streams.attach_cached(ref)
            assert first is second
            assert shared_streams._ATTACH_COUNT == before + 1
        finally:
            shared_streams.detach_all()
            shared_streams.unlink(ref)

    def test_unlink_is_idempotent(self):
        stream = _build(STREAM_CASES[0])
        ref = shared_streams.publish(
            stream, shared_streams.stream_signature("gemm", "u")
        )
        shared_streams.unlink(ref)
        shared_streams.unlink(ref)  # second call is a no-op
        with pytest.raises(FileNotFoundError):
            shared_streams.attach(ref)

    def test_signature_is_stable_and_distinct(self):
        a = shared_streams.stream_signature("gemm", (1, 2), "schedule")
        b = shared_streams.stream_signature("gemm", (1, 2), "schedule")
        c = shared_streams.stream_signature("gemm", (1, 2), "baseline")
        assert a == b and a != c


class TestParallelSweepSharing:
    def test_workers_never_rebuild_streams(self, monkeypatch):
        """Every distinct stream is built once, total, across the pool.

        ``stream_from_graph`` calls are counted in a fork-shared value;
        phase A builds (once per distinct stream), phase B only attaches,
        so the parallel count must match the serial sweep's -- where the
        per-kernel context memo already guarantees build-once.
        """
        import multiprocessing

        from repro.schedule import tightness as tightness_mod

        counter = multiprocessing.Value("i", 0)
        real = tightness_mod.stream_from_graph

        def counting(*args, **kwargs):
            with counter.get_lock():
                counter.value += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(tightness_mod, "stream_from_graph", counting)
        kwargs = dict(s_values=(6, 10, 14), params={"N": 4})
        serial = tightness_mod.audit_corpus(["gemm"], jobs=1, **kwargs)
        serial_builds = counter.value
        counter.value = 0
        parallel = tightness_mod.audit_corpus(["gemm"], jobs=2, **kwargs)
        assert [r.as_dict() for r in parallel.rows] == [
            r.as_dict() for r in serial.rows
        ]
        assert counter.value == serial_builds
        # sanity: a 3-point sweep without sharing would have rebuilt the
        # baseline + schedule streams in more than one worker
        assert counter.value <= serial_builds

    def test_parallel_chunked_rows_match_serial(self):
        from repro.schedule.tightness import audit_corpus

        kwargs = dict(s_values=(8, 18), params={"N": 4})
        plain = audit_corpus(["gemm"], jobs=1, **kwargs)
        chunked = audit_corpus(["gemm"], jobs=2, chunk_size=16, **kwargs)
        assert [r.as_dict() for r in chunked.rows] == [
            r.as_dict() for r in plain.rows
        ]


class TestValidation:
    def test_audit_corpus_rejects_bad_jobs(self):
        from repro.schedule.tightness import audit_corpus

        with pytest.raises(ValueError, match="jobs must be a positive"):
            audit_corpus(["gemm"], jobs=0)

    @pytest.mark.parametrize("chunk", [0, -3])
    def test_audit_corpus_rejects_bad_chunk_size(self, chunk):
        from repro.schedule.tightness import audit_corpus

        with pytest.raises(ValueError, match="chunk size must be a positive"):
            audit_corpus(["gemm"], chunk_size=chunk)

    def test_cli_rejects_nonpositive_jobs(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["tightness", "gemm", "--jobs", "0"])
        assert exc.value.code == 2
        assert "positive integer" in capsys.readouterr().err

    def test_cli_rejects_nonpositive_chunk_size(self, capsys):
        from repro.cli import main

        assert main(["tightness", "gemm", "--chunk-size", "0"]) == 2
        assert "positive integer" in capsys.readouterr().err

    def test_cli_chunk_size_flows_through(self):
        from repro.cli import main

        assert main([
            "tightness", "gemm", "--s", "18", "--params", "N=4",
            "--chunk-size", "32",
        ]) == 0


class TestNativeCacheDir:
    def test_respects_xdg_cache_home(self, tmp_path, monkeypatch):
        from repro.schedule import _native

        monkeypatch.delenv("REPRO_NATIVE_CACHE", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert _native._cache_dir() == tmp_path / "xdg" / "repro-native"

    def test_explicit_override_wins(self, tmp_path, monkeypatch):
        from repro.schedule import _native

        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "override"))
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert _native._cache_dir() == tmp_path / "override"

    def test_defaults_to_home_cache(self, monkeypatch):
        from repro.schedule import _native

        monkeypatch.delenv("REPRO_NATIVE_CACHE", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        assert _native._cache_dir() == (
            __import__("pathlib").Path.home() / ".cache" / "repro-native"
        )

    def test_tempdir_fallback_candidate(self, monkeypatch):
        import tempfile

        from repro.schedule import _native

        candidates = _native._cache_candidates()
        assert candidates[0] == _native._cache_dir()
        assert str(candidates[-1]).startswith(tempfile.gettempdir())

    def test_build_falls_back_when_cache_unwritable(
        self, tmp_path, monkeypatch
    ):
        """An unwritable primary cache dir must not disable the native core."""
        from repro.schedule import _native

        blocked = tmp_path / "blocked"
        blocked.write_text("")  # a *file*: mkdir under it raises OSError
        monkeypatch.setenv(
            "REPRO_NATIVE_CACHE", str(blocked / "cache")
        )
        fallback = tmp_path / "fallback"
        monkeypatch.setattr(
            _native, "_cache_candidates",
            lambda: [blocked / "cache", fallback],
        )
        lib = _native._build()
        if lib is None:  # no compiler in this environment
            pytest.skip("no C compiler available")
        assert lib._name.startswith(str(fallback))
        assert os.path.exists(lib._name)
