"""Solver backends: registry, equivalence, cross-check, engine threading."""

import pytest
import sympy as sp

from repro.analysis import analyze_kernel
from repro.engine import Engine, analyze_many
from repro.opt import ProblemIR, available_backends, get_backend
from repro.opt.backends.crosscheck import MISMATCH_PREFIX, _leading_mismatch
from repro.symbolic.posynomial import Posynomial
from repro.symbolic.symbols import X_SYM, tile
from repro.util.errors import SolverError

N = sp.Symbol("N", positive=True)
bi, bj, bk, bl = tile("i"), tile("j"), tile("k"), tile("l")


def _ir(obj, con, variables, extents=None):
    return ProblemIR.from_posynomials(
        Posynomial.from_expr(obj, variables),
        Posynomial.from_expr(con, variables),
        extents or {},
    )


class TestRegistry:
    def test_all_backends_registered(self):
        assert set(available_backends()) >= {"exact", "numeric-first", "cross-check"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(SolverError):
            get_backend("annealing")
        with pytest.raises(SolverError):
            Engine(solver="annealing")

    def test_cache_tags_namespace_backends(self):
        tags = {get_backend(name).cache_tag() for name in available_backends()}
        assert len(tags) == len(available_backends())


SOLVE_CASES = [
    # (objective, constraint, expected chi)
    (bi * bj * bk, bi * bk + bk * bj + bi * bj, sp.sqrt(3) * X_SYM ** sp.Rational(3, 2) / 9),
    (2 * bi * bj, bi * bj, 2 * X_SYM),
    (bi * bj + bi * bl, bi * bj + bi * bl, X_SYM),
    (2 * bi * bk, 2 * bk + bi, X_SYM**2 / 4),
]


class TestBackendEquivalence:
    @pytest.mark.parametrize("obj,con,expected", SOLVE_CASES)
    @pytest.mark.parametrize("backend", ["exact", "numeric-first", "cross-check"])
    def test_canonical_problems(self, backend, obj, con, expected):
        variables = [bi, bj, bk, bl]
        solution = get_backend(backend).solve(
            _ir(obj, con, variables), allow_pinning=False, allow_caps=False
        )
        assert sp.simplify(solution.chi - expected) == 0

    def test_capping_matches_exact(self):
        ir = _ir(bi * bj, bi, [bi, bj], {"j": N, "i": N})
        for backend in ("exact", "numeric-first"):
            solution = get_backend(backend).solve(
                ir, allow_pinning=True, allow_caps=True
            )
            assert sp.simplify(solution.chi - N * X_SYM) == 0
            assert solution.capped == ("j",)

    def test_missing_extent_rejected_by_both(self):
        ir = _ir(bi * bj, bi, [bi, bj], {})
        for backend in ("exact", "numeric-first"):
            with pytest.raises(SolverError, match="no extent cap"):
                get_backend(backend).solve(ir, allow_pinning=True, allow_caps=True)

    def test_interior_only_cap_rejection_matches(self):
        ir = _ir(bi * bj, bi, [bi, bj], {"j": N})
        for backend in ("exact", "numeric-first"):
            with pytest.raises(SolverError, match="interior-only"):
                get_backend(backend).solve(ir, allow_pinning=False, allow_caps=False)

    def test_numeric_first_defers_tile_closed_forms(self):
        solution = get_backend("numeric-first").solve(
            _ir(bi * bj * bk, bi * bk + bk * bj + bi * bj, [bi, bj, bk]),
            allow_pinning=False,
            allow_caps=False,
        )
        assert solution.exact
        assert solution.tiles == {}  # deferred: nothing downstream needs them
        assert any("numeric-first" in note for note in solution.notes)


class TestCrossCheck:
    def test_agreement_returns_exact_solution_with_note(self):
        solution = get_backend("cross-check").solve(
            _ir(bi * bj * bk, bi * bk + bk * bj + bi * bj, [bi, bj, bk]),
            allow_pinning=False,
            allow_caps=False,
        )
        assert any("cross-check" in note for note in solution.notes)
        assert solution.tiles  # exact's verified tile closed forms survive

    def test_leading_mismatch_detection(self):
        assert _leading_mismatch(2 * X_SYM, 2 * X_SYM) is None
        # equivalent forms of the same constant agree
        assert (
            _leading_mismatch(
                sp.sqrt(3) / 9 * X_SYM ** sp.Rational(3, 2),
                sp.Integer(3) ** sp.Rational(-3, 2) * X_SYM ** sp.Rational(3, 2),
            )
            is None
        )
        # lower-order differences are ignored
        assert _leading_mismatch(2 * X_SYM**2 + X_SYM, 2 * X_SYM**2) is None
        assert "alpha differs" in _leading_mismatch(X_SYM**2, X_SYM)
        assert "coefficient differs" in _leading_mismatch(3 * X_SYM, 2 * X_SYM)

    def test_consistent_rejection_reports_reference_error(self):
        ir = _ir(bi * bj, bi, [bi, bj], {})
        with pytest.raises(SolverError) as excinfo:
            get_backend("cross-check").solve(ir, allow_pinning=True, allow_caps=True)
        assert not str(excinfo.value).startswith(MISMATCH_PREFIX)


class TestEngineThreading:
    def test_engine_solver_selection(self):
        exact = analyze_kernel("gemm", solver="exact")
        fast = analyze_kernel("gemm", solver="numeric-first")
        assert sp.simplify(exact.bound - fast.bound) == 0
        assert fast.diagnostics.solver == "numeric-first"
        assert exact.diagnostics.solver == "exact"

    def test_cache_entries_namespaced_per_backend(self):
        engine = Engine(solver="exact")
        engine.analyze(_gemm_program())
        hits_after_exact = engine.cache.stats.hits
        # same problems under another backend must MISS (no aliasing)
        engine.analyze(_gemm_program(), solver="numeric-first")
        assert engine.cache.stats.hits == hits_after_exact
        stats = engine.solver_stats_snapshot()
        assert stats["exact"]["exact"] >= 1
        assert stats["numeric-first"]["exact"] >= 1

    def test_solver_stats_buckets(self):
        engine = Engine(solver="cross-check")
        engine.analyze(_gemm_program())
        counts = engine.solver_stats_snapshot()["cross-check"]
        assert set(counts) == {"exact", "fitted", "negative", "mismatch", "coverage"}
        assert counts["mismatch"] == 0

    def test_solve_stage_reports_solver_buckets(self):
        result = Engine(solver="exact").analyze(_gemm_program())
        solve = result.diagnostics.stage("solve")
        assert solve.count("solver_exact") >= 1


def _gemm_program():
    from repro.ir.program import Program
    from repro.kernels.common import ref, stmt

    return Program.make(
        "p",
        [
            stmt(
                "mm",
                {"i": "N", "j": "N", "k": "N"},
                ref("C", "i,j"),
                ref("C", "i,j"),
                ref("A", "i,k"),
                ref("B", "k,j"),
            )
        ],
    )


@pytest.mark.slow
def test_backend_equivalence_full_corpus():
    """Every fused problem of the 38-kernel suite: zero rho mismatches.

    One cross-check sweep runs both backends on every distinct canonical
    problem (8) of the corpus; the engine counters must show no leading-order
    disagreement, and the resulting bounds must equal the exact backend's.
    """
    from repro.kernels import kernel_names

    names = kernel_names()
    engine = Engine(solver="cross-check")
    checked = analyze_many(names, engine=engine)
    counts = engine.solver_stats_snapshot()["cross-check"]
    assert counts["mismatch"] == 0, counts
    exact = analyze_many(names, engine=Engine(solver="exact"))
    assert [r.bound for r in checked] == [r.bound for r in exact]
    # Coverage differences (problems only one backend closes) are a handful
    # of boundary-degenerate cases; anything more means the fast path drifted.
    assert counts["coverage"] <= 8, counts
