"""Utility containers: OrderedSet, UnionFind, error hierarchy."""

import pytest

from repro.util import OrderedSet, unique_in_order
from repro.util.errors import (
    FrontendError,
    NotSoapError,
    PebblingError,
    SoapError,
    SolverError,
)
from repro.util.unionfind import UnionFind


class TestOrderedSet:
    def test_preserves_insertion_order(self):
        s = OrderedSet([3, 1, 2, 1])
        assert list(s) == [3, 1, 2]

    def test_indexing(self):
        s = OrderedSet("bca")
        assert s[0] == "b" and s[2] == "a"

    def test_add_discard(self):
        s = OrderedSet([1])
        s.add(2)
        s.add(1)
        s.discard(3)  # no error
        s.discard(1)
        assert list(s) == [2]

    def test_update_and_len(self):
        s = OrderedSet()
        s.update([1, 2, 2, 3])
        assert len(s) == 3

    def test_equality_with_sets(self):
        assert OrderedSet([1, 2]) == {2, 1}
        assert OrderedSet([1, 2]) == OrderedSet([2, 1])

    def test_hashable(self):
        assert hash(OrderedSet([1, 2])) == hash(OrderedSet([2, 1]))

    def test_unique_in_order(self):
        assert unique_in_order("abcabd") == ["a", "b", "c", "d"]


class TestUnionFind:
    def test_initial_singletons(self):
        uf = UnionFind()
        uf.add("a")
        uf.add("b")
        assert not uf.same("a", "b")

    def test_union_and_find(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.same("a", "c")

    def test_representative_is_earliest(self):
        uf = UnionFind()
        for item in "abcd":
            uf.add(item)
        uf.union("d", "b")
        uf.union("c", "d")
        assert uf.find("c") == "b"

    def test_groups_deterministic(self):
        uf = UnionFind()
        for item in "abcde":
            uf.add(item)
        uf.union("a", "c")
        uf.union("d", "e")
        assert uf.groups() == [["a", "c"], ["b"], ["d", "e"]]

    def test_find_adds_implicitly(self):
        uf = UnionFind()
        assert uf.find("x") == "x"


class TestErrors:
    @pytest.mark.parametrize(
        "err", [NotSoapError, FrontendError, SolverError, PebblingError]
    )
    def test_hierarchy(self, err):
        assert issubclass(err, SoapError)

    def test_catchable_as_base(self):
        with pytest.raises(SoapError):
            raise FrontendError("nope")
