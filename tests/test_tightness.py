"""Tightness audit: gaps, classification, reporting, CLI."""

import json
import math

import pytest

from repro.cli import main
from repro.reporting.serialize import tightness_report
from repro.reporting.tightness import tightness_markdown
from repro.schedule.tightness import (
    audit_corpus,
    audit_kernel,
    audit_params,
    classify_gap,
)


@pytest.fixture(scope="module")
def small_report():
    return audit_corpus(["gemm", "atax", "jacobi1d"], s_values=(8, 18))


class TestAuditKernel:
    def test_gemm_attains_its_bound(self):
        rows = audit_kernel("gemm", s_values=(18,))
        (row,) = rows
        assert row.ok
        assert row.tiled
        assert math.isfinite(row.gap)
        # the derived blocked schedule stays within the constant the
        # examples/tiled_schedule.py demonstration established (~2.2x)
        assert row.gap <= 3.0
        assert row.classification == "attained"
        assert row.schedule_cost < row.program_order_cost

    def test_bandwidth_bound_kernel_streams(self):
        rows = audit_kernel("atax", s_values=(8,))
        (row,) = rows
        assert row.ok and not row.tiled
        assert math.isfinite(row.gap)
        assert row.schedule_cost == row.program_order_cost

    def test_infeasible_s_clamped(self):
        rows = audit_kernel("gemm", s_values=(1,))
        (row,) = rows
        assert row.ok
        assert row.s > 1 and row.s_requested == 1
        assert any("clamped" in note for note in row.notes)

    def test_clamped_duplicates_collapse(self):
        rows = audit_kernel("gemm", s_values=(1, 2))
        assert len(rows) == 1  # both requests clamp to the same feasible S

    def test_too_large_instance_reports_error(self):
        rows = audit_kernel("gemm", s_values=(8,), max_vertices=10)
        (row,) = rows
        assert not row.ok
        assert "too large" in row.error
        assert row.classification == "error"

    def test_params_merge_over_defaults(self):
        rows = audit_kernel("gemm", params={"N": 5, "UNUSED": 3}, s_values=(8,))
        (row,) = rows
        assert row.params == {"N": 5}

    def test_audit_params_defaults(self):
        from repro.kernels import get_kernel

        params = audit_params("jacobi1d", get_kernel("jacobi1d").build())
        assert params["T"] == 4  # override keeps time loops short
        assert params["N"] >= 4


class TestClassification:
    def test_buckets(self):
        assert classify_gap(1.0) == "attained"
        assert classify_gap(2.5) == "attained"
        assert classify_gap(5.0) == "near"
        assert classify_gap(50.0) == "loose"


class TestParallelSweep:
    def test_parallel_rows_identical_to_serial(self, small_report):
        """jobs=N fans the replay sweep over a process pool; the rows (and
        their order) must be exactly the serial ones."""
        parallel = audit_corpus(
            ["gemm", "atax", "jacobi1d"], s_values=(8, 18), jobs=3
        )
        assert [r.as_dict() for r in parallel.rows] == [
            r.as_dict() for r in small_report.rows
        ]

    def test_parallel_clamp_collapse(self):
        """Requested sizes clamping to one feasible S collapse in the pool
        path exactly like the serial path."""
        serial = audit_corpus(["gemm"], s_values=(1, 2), jobs=1)
        parallel = audit_corpus(["gemm"], s_values=(1, 2), jobs=2)
        assert len(parallel.rows) == len(serial.rows) == 1

    def test_parallel_error_rows_preserved(self):
        report = audit_corpus(["gemm"], s_values=(8, 18), jobs=2, max_vertices=1)
        assert len(report.rows) == 2
        assert all(not r.ok and "too large" in r.error for r in report.rows)

    def test_cli_jobs_flag(self, capsys):
        assert main(["tightness", "gemm", "--s", "18", "--jobs", "2"]) == 0
        assert "gemm" in capsys.readouterr().out

    def test_threaded_audits_do_not_cross_contexts(self):
        """The kernel-context memo is thread-local: concurrent audits on a
        shared thread pool (the service daemon's shape) must not hand one
        kernel the other's CDAG."""
        from concurrent.futures import ThreadPoolExecutor

        from repro.analysis import analyze_kernel

        results = {name: analyze_kernel(name) for name in ("gemm", "atax")}

        def audit(name):
            return audit_kernel(name, result=results[name], s_values=(8,))

        with ThreadPoolExecutor(2) as pool:
            for _ in range(3):
                (a,), (b,) = pool.map(audit, ["gemm", "atax"])
                assert a.kernel == "gemm" and b.kernel == "atax"
                assert a.ok and b.ok
                assert a.n_vertices != b.n_vertices

    def test_duplicate_clamp_skips_replay_work(self, monkeypatch):
        """Requested sizes clamping to one feasible S are skipped before
        any replay, not simulated and discarded."""
        import repro.schedule.tightness as tightness_mod

        calls = []
        real = tightness_mod.simulate_io

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(tightness_mod, "simulate_io", counting)
        rows = audit_kernel("gemm", s_values=(1, 2, 3))
        assert len(rows) == 1
        # one schedule replay + one program-order replay, exactly once
        assert len(calls) == 2


class TestAuditCorpus:
    def test_rows_and_summary(self, small_report):
        summary = small_report.summary()
        assert summary["kernels"] == 3
        assert summary["audited"] == 3
        assert summary["finite_gaps"] is True
        assert summary["failed"] == []
        kernels = {row.kernel for row in small_report.rows}
        assert kernels == {"gemm", "atax", "jacobi1d"}

    def test_every_derivable_kernel_has_finite_gap(self, small_report):
        for row in small_report.rows:
            assert row.ok
            assert math.isfinite(row.gap), row

    def test_json_report_schema(self, small_report):
        payload = json.loads(json.dumps(tightness_report(small_report)))
        assert payload["report"] == "tightness"
        assert payload["generator"] == "repro"
        assert payload["summary"]["finite_gaps"] is True
        first = payload["rows"][0]
        assert {"kernel", "s", "gap", "classification", "bound"} <= set(first)

    def test_markdown_rendering(self, small_report):
        text = tightness_markdown(small_report)
        assert "# TIGHTNESS" in text
        assert "| gemm |" in text
        assert "## Polybench" in text
        assert "**Summary:**" in text


class TestTightnessCLI:
    def test_text_output(self, capsys):
        code = main(["tightness", "gemm", "--s", "18"])
        out = capsys.readouterr().out
        assert code == 0
        assert "gemm" in out and "attained" in out
        assert "audited" in out

    def test_json_output(self, capsys):
        code = main(["tightness", "gemm", "--s", "18", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"] == "tightness"
        assert payload["rows"][0]["kernel"] == "gemm"

    def test_markdown_file(self, tmp_path, capsys):
        target = tmp_path / "TIGHTNESS.md"
        assert main(["tightness", "gemm", "--s", "18", "--markdown", str(target)]) == 0
        assert "| gemm |" in target.read_text()

    def test_params_override(self, capsys):
        assert main(["tightness", "gemm", "--s", "18", "--params", "N=4"]) == 0
        assert "N=4" not in capsys.readouterr().err

    def test_unknown_kernel_exits_2(self, capsys):
        assert main(["tightness", "nope"]) == 2
        assert "unknown kernel" in capsys.readouterr().err

    def test_bad_s_exits_2(self, capsys):
        assert main(["tightness", "gemm", "--s", "abc"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_all_failed_exits_1(self, capsys):
        """A selection where every kernel fails to audit must not exit 0."""
        code = main(["tightness", "gemm", "--s", "18", "--max-vertices", "1"])
        out = capsys.readouterr().out
        assert "skipped" in out
        assert code == 1


class TestValidationReportReplay:
    """Satellite: ValidationReport carries the schedule-replay cost."""

    def test_replay_matches_greedy(self):
        from repro.kernels import get_kernel
        from repro.pebbling.validate import validate_bound

        report = validate_bound(get_kernel("gemm").build(), {"N": 3}, 6)
        assert report.replay_cost == report.greedy_cost
        assert report.consistent
        assert report.schedule_cost is not None
        assert report.sound

    def test_validate_cli_shows_replay(self, capsys):
        assert main(["validate", "gemm", "--params", "N=2", "--S", "4"]) == 0
        out = capsys.readouterr().out
        assert "stream replay" in out
        assert "consistent: True" in out
