"""Schedule derivation: generic point mapping, tiles, bandwidth degrade."""

import sympy as sp
import pytest

from repro.analysis import analyze_kernel
from repro.cdag.build import build_cdag
from repro.kernels import get_kernel
from repro.opt.tiling import (
    concrete_tiles_at_x0,
    is_bandwidth_bound,
    tiles_at_x0,
)
from repro.pebbling.greedy import greedy_pebbling_cost, tiled_order
from repro.schedule.derive import blocked_order, derive_schedule
from repro.symbolic.symbols import X_SYM


@pytest.fixture(scope="module")
def gemm_result():
    return analyze_kernel("gemm")


class TestRecordedPoints:
    def test_points_recorded_by_default(self):
        cdag = build_cdag(get_kernel("gemm").build(), {"N": 3})
        vertex = cdag.vertices_of("C")[0]
        statement, point = cdag.points[vertex]
        assert statement == "gemm"
        assert set(point) == {"i", "j", "k"}
        assert cdag.point_of(vertex) == point
        assert cdag.statement_of(vertex) == "gemm"

    def test_inputs_have_no_point(self):
        cdag = build_cdag(get_kernel("gemm").build(), {"N": 3})
        assert cdag.point_of(cdag.inputs[0]) is None
        assert cdag.statement_of(cdag.inputs[0]) is None

    def test_record_points_false_saves_the_mapping(self):
        cdag = build_cdag(get_kernel("gemm").build(), {"N": 3}, record_points=False)
        assert cdag.points == {}

    def test_generic_point_of_matches_vertex_structure(self):
        """The recorded point is the hand-coding it replaces: for gemm,
        vertex ('v', 'C', (i, j), k) -> {i, j, k}."""
        cdag = build_cdag(get_kernel("gemm").build(), {"N": 3})
        for vertex in cdag.vertices_of("C"):
            _, _, (i, j), k = vertex
            assert cdag.point_of(vertex) == {"i": i, "j": j, "k": k}


class TestDeriveSchedule:
    def test_gemm_square_tiles(self, gemm_result):
        schedule = derive_schedule(
            get_kernel("gemm").build(), gemm_result.program_bound, {"N": 8}, 18
        )
        assert schedule.tiled
        # sqrt(18) ~ 4.24 -> 4 per loop (the paper's sqrt(S) x sqrt(S) tile)
        assert schedule.tile_sizes == {"i": 4, "j": 4, "k": 4}
        assert schedule.variable_order == ("i", "j", "k")
        assert schedule.source_arrays == ("C",)

    def test_tiles_clamped_to_extents(self, gemm_result):
        schedule = derive_schedule(
            get_kernel("gemm").build(), gemm_result.program_bound, {"N": 3}, 100
        )
        assert all(size <= 3 for size in schedule.tile_sizes.values())

    def test_blocked_order_is_topological_and_better(self, gemm_result):
        program = get_kernel("gemm").build()
        params, s = {"N": 8}, 18
        schedule = derive_schedule(program, gemm_result.program_bound, params, s)
        cdag = build_cdag(program, params)
        order = blocked_order(cdag, schedule)
        blocked_cost = greedy_pebbling_cost(cdag.graph, s, order)  # checks topo
        plain_cost = greedy_pebbling_cost(cdag.graph, s)
        assert blocked_cost < plain_cost

    def test_multi_statement_partial_tiles(self):
        """cholesky: the A3 subgraph yields sqrt(S) tiles; the bandwidth-bound
        A1/A2 subgraphs contribute streaming notes, not symbolic tiles."""
        result = analyze_kernel("cholesky")
        schedule = derive_schedule(
            get_kernel("cholesky").build(), result.program_bound, {"N": 6}, 18
        )
        assert schedule.tiled
        assert any("bandwidth-bound" in note for note in schedule.notes)
        assert all(isinstance(t, int) and t >= 1 for t in schedule.tile_sizes.values())

    def test_as_dict_round_trips_to_json(self, gemm_result):
        import json

        schedule = derive_schedule(
            get_kernel("gemm").build(), gemm_result.program_bound, {"N": 4}, 8
        )
        payload = json.loads(json.dumps(schedule.as_dict()))
        assert payload["tiled"] is True
        assert payload["tile_sizes"]["i"] >= 1


class TestBandwidthBoundPath:
    """Satellite fix: ``x0 == oo`` must not leak symbolic tiles downstream."""

    @pytest.fixture(scope="class")
    def atax_result(self):
        return analyze_kernel("atax")

    def test_tiles_at_x0_stays_symbolic(self):
        """Pinned behavior: the raw accessor returns the unsubstituted tile
        *shapes* (possibly containing X) for bandwidth-bound subgraphs."""
        result = analyze_kernel("cholesky")
        analysis = result.program_bound.per_array["A1"]
        assert is_bandwidth_bound(analysis.intensity)
        tiles = tiles_at_x0(analysis.intensity)
        assert any(X_SYM in sp.sympify(e).free_symbols for e in tiles.values())

    def test_concrete_tiles_refuse_bandwidth_bound(self):
        result = analyze_kernel("cholesky")
        analysis = result.program_bound.per_array["A1"]
        assert concrete_tiles_at_x0(analysis.intensity, {"N": 6}, 18) is None

    def test_concrete_tiles_for_compute_bound(self):
        result = analyze_kernel("gemm")
        analysis = result.program_bound.per_array["C"]
        tiles = concrete_tiles_at_x0(analysis.intensity, {"N": 8}, 18)
        assert tiles == {"i": 4, "j": 4, "k": 4}

    def test_derive_degrades_to_streaming(self, atax_result):
        """Fully bandwidth-bound kernel: the schedule is untiled program
        order, by design, not an error."""
        assert is_bandwidth_bound(
            atax_result.program_bound.per_array["tmp"].intensity
        )
        schedule = derive_schedule(
            get_kernel("atax").build(),
            atax_result.program_bound,
            {"M": 4, "N": 4},
            8,
        )
        assert not schedule.tiled
        assert all(size == 1 for size in schedule.tile_sizes.values())
        assert any("bandwidth-bound" in note for note in schedule.notes)
        cdag = build_cdag(get_kernel("atax").build(), {"M": 4, "N": 4})
        order = blocked_order(cdag, schedule)
        greedy_pebbling_cost(cdag.graph, 8, order)  # legal order


class TestTiledOrderGeneric:
    """`tiled_order` with the recorded point mapping (no hand-coding)."""

    def test_statement_rank_orders_statements_within_tile(self):
        program = get_kernel("atax").build()
        cdag = build_cdag(program, {"M": 4, "N": 4})
        ranks = {"Ax": 0, "Aty": 1}

        order = tiled_order(
            cdag.graph,
            cdag.point_of,
            {"i": 2, "j": 2},
            ["i", "j"],
            statement_rank=lambda v: ranks.get(cdag.statement_of(v), 0),
        )
        greedy_pebbling_cost(cdag.graph, 8, order)  # must be legal

    def test_missing_vars_default_to_tile_zero(self):
        """Vertices whose point lacks a variable sort into tile 0 (the
        multi-statement case where statements use different loop names)."""
        program = get_kernel("gesummv").build()
        cdag = build_cdag(program, {"N": 4})
        order = tiled_order(
            cdag.graph, cdag.point_of, {"i": 2, "j": 2}, ["i", "j"]
        )
        assert len(order) == cdag.n_vertices - len(cdag.inputs)

    def test_tiled_order_beats_plain_on_gemm(self):
        cdag = build_cdag(get_kernel("gemm").build(), {"N": 6})
        order = tiled_order(
            cdag.graph, cdag.point_of, {"i": 3, "j": 3, "k": 3}, ["i", "j", "k"]
        )
        assert greedy_pebbling_cost(cdag.graph, 11, order) <= greedy_pebbling_cost(
            cdag.graph, 11
        )
