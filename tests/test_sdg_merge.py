"""Subgraph-statement fusion tests (Definition 6 mechanics)."""

import sympy as sp

from repro.kernels.common import ref, stmt
from repro.ir.program import Program
from repro.sdg.merge import fuse_statements
from repro.symbolic.symbols import tile

bi, bj, bt = tile("i"), tile("j"), tile("t")


def _atax() -> Program:
    first = stmt(
        "Ax",
        {"i": "M", "j": "N"},
        ref("tmp", "i"),
        ref("tmp", "i"),
        ref("A", "i,j"),
        ref("x", "j"),
    )
    second = stmt(
        "Aty",
        {"i": "M", "j": "N"},
        ref("y", "j"),
        ref("y", "j"),
        ref("A", "i,j"),
        ref("tmp", "i"),
    )
    return Program.make("atax", [first, second])


def _jacobi() -> Program:
    b = stmt(
        "sweepB",
        {"t": "T", "i": "N"},
        ref("B", "i"),
        ref("A", "i-1", "i", "i+1"),
    )
    a = stmt(
        "sweepA",
        {"t": "T", "i": "N"},
        ref("A", "i"),
        ref("B", "i-1", "i", "i+1"),
    )
    return Program.make("jacobi", [b, a])


class TestAtaxFusion:
    def test_objective_counts_both_statements(self):
        fused = fuse_statements(_atax(), ("tmp", "y"))
        # Both statements share (i, j) after unification: 2 * b_i * b_j.
        assert sp.simplify(fused.objective.expr - 2 * bi * bj) == 0

    def test_shared_matrix_counted_once(self):
        fused = fuse_statements(_atax(), ("tmp", "y"))
        a_terms = [
            t for t in fused.constraint.terms
            if t.exponent(bi) == 1 and t.exponent(bj) == 1
        ]
        assert len(a_terms) == 1 and sp.simplify(a_terms[0].coeff - 1) == 0

    def test_inputs_exclude_internal_arrays(self):
        fused = fuse_statements(_atax(), ("tmp", "y"))
        assert set(fused.input_arrays) == {"A", "x"}

    def test_singleton_subgraph(self):
        fused = fuse_statements(_atax(), ("tmp",))
        assert set(fused.input_arrays) == {"A", "x"}
        assert sp.simplify(fused.objective.expr - bi * bj) == 0


class TestJacobiFusion:
    def test_fused_variables_unified(self):
        fused = fuse_statements(_jacobi(), ("B", "A"))
        assert set(fused.variables) == {"t", "i"}

    def test_objective(self):
        fused = fuse_statements(_jacobi(), ("B", "A"))
        assert sp.simplify(fused.objective.expr - 2 * bi * bt) == 0

    def test_surface_constraint(self):
        """A contributes b_i + 2 b_t (bottom edge + side columns), B only
        2 b_t (its consumer runs after its producer in the same sweep);
        constants are below leading order and dropped."""
        fused = fuse_statements(_jacobi(), ("B", "A"))
        expr = sp.expand(fused.constraint.expr)
        assert sp.simplify(expr - (bi + 4 * bt)) == 0

    def test_no_external_inputs(self):
        fused = fuse_statements(_jacobi(), ("B", "A"))
        assert fused.input_arrays == ()


class Test2mmFusion:
    def test_positional_unification_through_intermediate(self):
        first = stmt(
            "mm1",
            {"i": "N", "j": "N", "k": "N"},
            ref("tmp", "i,j"),
            ref("tmp", "i,j"),
            ref("A", "i,k"),
            ref("B", "k,j"),
        )
        second = stmt(
            "mm2",
            {"i2": "N", "l": "N", "m": "N"},
            ref("D", "i2,l"),
            ref("D", "i2,l"),
            ref("tmp", "i2,m"),
            ref("C", "m,l"),
        )
        program = Program.make("2mm", [first, second])
        fused = fuse_statements(program, ("tmp", "D"))
        # St2's (i2, m) unify with St1's (i, j); l stays fresh.
        assert set(fused.variables) == {"i", "j", "k", "l"}
        bl, bk = tile("l"), tile("k")
        assert sp.simplify(
            fused.objective.expr - (bi * bj * bk + bi * bj * bl)
        ) == 0

    def test_intermediate_surface_is_its_footprint(self):
        first = stmt(
            "mm1",
            {"i": "N", "j": "N", "k": "N"},
            ref("tmp", "i,j"),
            ref("tmp", "i,j"),
            ref("A", "i,k"),
            ref("B", "k,j"),
        )
        second = stmt(
            "mm2",
            {"i2": "N", "l": "N", "m": "N"},
            ref("D", "i2,l"),
            ref("D", "i2,l"),
            ref("tmp", "i2,m"),
            ref("C", "m,l"),
        )
        program = Program.make("2mm", [first, second])
        fused = fuse_statements(program, ("tmp", "D"))
        tmp_terms = [
            t
            for t in fused.constraint.terms
            if t.exponent(bi) == 1 and t.exponent(bj) == 1 and t.degree == 2
        ]
        # tmp's Corollary-1 term b_i*b_j appears exactly once.
        assert len(tmp_terms) == 1
