"""Leading-term extraction, ratios and shape comparison."""

import sympy as sp

from repro.symbolic.asymptotics import leading_term, ratio_to, same_leading_shape
from repro.symbolic.symbols import S_SYM

N = sp.Symbol("N", positive=True)
M = sp.Symbol("M", positive=True)
T = sp.Symbol("T", positive=True)
L = sp.Symbol("L", positive=True)
H = sp.Symbol("H", positive=True)
P = sp.Symbol("P", positive=True)


class TestLeadingTerm:
    def test_single_term_unchanged(self):
        expr = 2 * N**3 / sp.sqrt(S_SYM)
        assert sp.simplify(leading_term(expr) - expr) == 0

    def test_lower_degree_dropped(self):
        assert sp.simplify(leading_term(N**3 + N**2) - N**3) == 0

    def test_parameter_dominates_s_factor(self):
        # N^3/sqrt(S) dominates N^2: parameters are taken large first.
        expr = N**3 / sp.sqrt(S_SYM) + N**2
        assert sp.simplify(leading_term(expr) - N**3 / sp.sqrt(S_SYM)) == 0

    def test_s_exponent_breaks_parameter_ties(self):
        expr = N**2 + N**2 / sp.sqrt(S_SYM)
        assert sp.simplify(leading_term(expr) - N**2) == 0

    def test_incomparable_terms_both_kept(self):
        # BERT-style: H^2 P^2 L vs. L^2 -- neither dominates.
        expr = 8 * H**2 * P**2 * L / sp.sqrt(S_SYM) + 4 * H * P * L**2 / sp.sqrt(S_SYM)
        lead = sp.expand(leading_term(expr))
        assert sp.simplify(lead - sp.expand(expr)) == 0

    def test_mixed_parameters(self):
        expr = M * N / sp.sqrt(S_SYM) + M + N
        assert sp.simplify(leading_term(expr) - M * N / sp.sqrt(S_SYM)) == 0

    def test_coefficient_preserved(self):
        expr = sp.Rational(2, 3) * N**3 / sp.sqrt(S_SYM) + N
        assert sp.simplify(leading_term(expr) - sp.Rational(2, 3) * N**3 / sp.sqrt(S_SYM)) == 0

    def test_ties_summed(self):
        expr = N * T + T * N + N
        assert sp.simplify(leading_term(expr) - 2 * N * T) == 0


class TestRatioAndShape:
    def test_identical_ratio_one(self):
        a = 2 * N**3 / sp.sqrt(S_SYM)
        assert ratio_to(a, a) == 1
        assert same_leading_shape(a, a)

    def test_constant_factor(self):
        a = 4 * N**2 * T / sp.sqrt(S_SYM)
        b = 2 * N**2 * T / sp.sqrt(S_SYM)
        assert ratio_to(a, b) == 2
        assert same_leading_shape(a, b)

    def test_sqrt_constant_factor(self):
        a = 2 * sp.sqrt(3) * N / sp.sqrt(S_SYM)
        b = N / sp.sqrt(S_SYM)
        assert same_leading_shape(a, b)

    def test_different_s_power_not_shape(self):
        a = N**2 / S_SYM
        b = N**2 / sp.sqrt(S_SYM)
        assert not same_leading_shape(a, b)

    def test_different_parameter_power_not_shape(self):
        assert not same_leading_shape(N**3, N**2)

    def test_parameter_dependent_ratio_not_shape(self):
        assert not same_leading_shape(M * N, N**2)
