"""Red-blue pebble game: legality, optimal search, greedy schedules."""

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.pebbling.game import Move, PebbleGame, replay
from repro.pebbling.greedy import greedy_pebbling_cost, tiled_order
from repro.pebbling.optimal import optimal_pebbling_cost
from repro.util.errors import PebblingError


def chain(n: int) -> nx.DiGraph:
    return nx.DiGraph([(i, i + 1) for i in range(n)])


class TestGameRules:
    def test_initial_state(self):
        game = PebbleGame(chain(3), 2)
        assert game.blue == {0}
        assert not game.finished

    def test_load_requires_blue(self):
        game = PebbleGame(chain(3), 2)
        with pytest.raises(PebblingError):
            game.load(1)
        game.load(0)
        assert game.io_cost == 1

    def test_compute_requires_red_parents(self):
        game = PebbleGame(chain(3), 2)
        with pytest.raises(PebblingError):
            game.compute(1)
        game.load(0)
        game.compute(1)
        assert 1 in game.red

    def test_inputs_cannot_be_computed(self):
        game = PebbleGame(chain(3), 2)
        with pytest.raises(PebblingError):
            game.compute(0)

    def test_capacity_enforced(self):
        game = PebbleGame(chain(3), 1)
        game.load(0)
        with pytest.raises(PebblingError):
            game.compute(1)  # no free red pebble

    def test_store_requires_red(self):
        game = PebbleGame(chain(3), 2)
        with pytest.raises(PebblingError):
            game.store(2)

    def test_full_game(self):
        game = PebbleGame(chain(2), 2)
        game.load(0)
        game.compute(1)
        game.discard_red(0)
        game.compute(2)
        game.store(2)
        assert game.finished
        assert game.io_cost == 2

    def test_replay_validates(self):
        moves = [
            Move("load", 0),
            Move("compute", 1),
            Move("discard_red", 0),
            Move("compute", 2),
            Move("store", 2),
        ]
        assert replay(chain(2), 2, moves) == 2

    def test_replay_rejects_incomplete(self):
        with pytest.raises(PebblingError):
            replay(chain(2), 2, [Move("load", 0)])


class TestOptimal:
    def test_chain_cost(self):
        # load input, compute along the chain, store the output.
        assert optimal_pebbling_cost(chain(4), 2) == 2

    def test_binary_tree_reduction(self):
        g = nx.DiGraph([(0, 4), (1, 4), (2, 5), (3, 5), (4, 6), (5, 6)])
        # 4 input loads + 1 output store with S = 3.
        assert optimal_pebbling_cost(g, 3) == 5

    def test_insufficient_pebbles_raise(self):
        g = nx.DiGraph([(0, 2), (1, 2)])
        with pytest.raises(PebblingError):
            optimal_pebbling_cost(g, 2)

    def test_small_s_forces_spills(self):
        """Hong-Kung: with minimal S, shared values must be reloaded."""
        g = nx.DiGraph([(0, 3), (1, 3), (0, 4), (2, 4), (3, 5), (4, 5)])
        tight = optimal_pebbling_cost(g, 3)
        roomy = optimal_pebbling_cost(g, 6)
        assert roomy <= tight

    def test_state_limit(self):
        g = nx.gnp_random_graph(9, 0.4, seed=1, directed=True)
        dag = nx.DiGraph((u, v) for u, v in g.edges if u < v)
        dag.add_nodes_from(range(9))
        with pytest.raises(PebblingError):
            optimal_pebbling_cost(dag, 3, state_limit=5)


class TestGreedy:
    def test_chain(self):
        assert greedy_pebbling_cost(chain(4), 2) == 2

    def test_never_beats_optimal(self):
        g = nx.DiGraph([(0, 3), (1, 3), (0, 4), (2, 4), (3, 5), (4, 5)])
        for s in (3, 4, 6):
            assert greedy_pebbling_cost(g, s) >= optimal_pebbling_cost(g, s)

    def test_rejects_non_topological_order(self):
        with pytest.raises(PebblingError):
            greedy_pebbling_cost(chain(3), 2, order=[2, 1, 3])

    def test_returns_certified_moves(self):
        cost, moves = greedy_pebbling_cost(chain(3), 2, return_moves=True)
        assert replay(chain(3), 2, moves) == cost

    def test_tiled_order_is_topological(self):
        from repro.cdag.build import build_cdag
        from repro.ir.program import Program
        from repro.kernels.common import ref, stmt

        gemm = stmt(
            "gemm", {"i": "N", "j": "N", "k": "N"},
            ref("C", "i,j"), ref("C", "i,j"), ref("A", "i,k"), ref("B", "k,j"),
        )
        cdag = build_cdag(Program.make("gemm", [gemm]), {"N": 4})
        # the generic point mapping recorded at CDAG build replaces the old
        # per-kernel hand-coded vertex decoding
        order = tiled_order(
            cdag.graph, cdag.point_of, {"i": 2, "j": 2, "k": 2}, ["i", "j", "k"]
        )
        cost_tiled = greedy_pebbling_cost(cdag.graph, 8, order)
        cost_plain = greedy_pebbling_cost(cdag.graph, 8)
        assert cost_tiled <= cost_plain

    def test_lru_policy_never_beats_belady_on_gemm(self):
        from repro.cdag.build import build_cdag
        from repro.kernels import get_kernel

        cdag = build_cdag(get_kernel("gemm").build(), {"N": 4})
        for s in (6, 8, 12):
            belady = greedy_pebbling_cost(cdag.graph, s, policy="belady")
            lru = greedy_pebbling_cost(cdag.graph, s, policy="lru")
            assert belady <= lru

    def test_lru_moves_are_certified(self):
        g = nx.DiGraph([(0, 3), (1, 3), (0, 4), (2, 4), (3, 5), (4, 5)])
        cost, moves = greedy_pebbling_cost(g, 3, policy="lru", return_moves=True)
        assert replay(g, 3, moves) == cost

    def test_unknown_policy_rejected(self):
        with pytest.raises(PebblingError):
            greedy_pebbling_cost(chain(3), 2, policy="mru")

    def test_eviction_is_deterministic(self):
        """Tie-breaking by stream id: repeated runs give identical costs
        (the old set-iteration tie-break was hash-order dependent)."""
        from repro.cdag.build import build_cdag
        from repro.kernels import get_kernel
        from repro.pebbling.greedy import stream_vertex_ids, default_order

        cdag = build_cdag(get_kernel("syrk").build(), {"N": 4, "M": 4})
        order = default_order(cdag.graph)
        ids = stream_vertex_ids(cdag.graph, order)
        assert sorted(ids.values()) == list(range(len(ids)))
        costs = {
            greedy_pebbling_cost(cdag.graph, 7, order) for _ in range(3)
        }
        assert len(costs) == 1


# ---------------------------------------------------------------------------
# property-based: greedy produces legal pebblings on random DAGs
# ---------------------------------------------------------------------------


@st.composite
def _random_dags(draw):
    n = draw(st.integers(4, 9))
    edges = []
    for v in range(1, n):
        parents = draw(
            st.lists(st.integers(0, v - 1), min_size=0, max_size=2, unique=True)
        )
        edges.extend((p, v) for p in parents)
    g = nx.DiGraph(edges)
    g.add_nodes_from(range(n))
    return g


@given(dag=_random_dags(), s=st.integers(3, 6))
@settings(max_examples=60, deadline=None)
def test_greedy_is_certified_on_random_dags(dag, s):
    try:
        cost, moves = greedy_pebbling_cost(dag, s, return_moves=True)
    except PebblingError:
        return  # S too small for the working set: legitimately rejected
    assert replay(dag, s, moves) == cost


@given(dag=_random_dags())
@settings(max_examples=20, deadline=None)
def test_optimal_lower_bounds_greedy_on_random_dags(dag):
    s = 4
    try:
        optimal = optimal_pebbling_cost(dag, s, state_limit=200_000)
        greedy = greedy_pebbling_cost(dag, s)
    except PebblingError:
        return
    assert optimal <= greedy
