"""Concrete CDAG construction, dominator sets, Min sets."""

import networkx as nx
import pytest

from repro.cdag.build import build_cdag
from repro.cdag.dominator import min_dominator_size, min_set
from repro.ir.program import Program
from repro.kernels.common import ref, stmt
from repro.frontend.python_frontend import parse_python
from tests.test_sdg_graph import figure2_program


class TestBuild:
    def test_gemm_vertex_count(self):
        gemm = stmt(
            "gemm", {"i": "N", "j": "N", "k": "N"},
            ref("C", "i,j"), ref("C", "i,j"), ref("A", "i,k"), ref("B", "k,j"),
        )
        cdag = build_cdag(Program.make("gemm", [gemm]), {"N": 3})
        # 27 update versions + 9 + 9 input elements.
        assert len(cdag.vertices_of("C")) == 27
        assert len(cdag.inputs) == 18
        assert nx.is_directed_acyclic_graph(cdag.graph)

    def test_figure2_example(self):
        """Paper Figure 2: N=M=2, K=3."""
        cdag = build_cdag(figure2_program(), {"N": 2, "M": 2, "K": 3})
        assert len(cdag.vertices_of("C")) == 4  # N*M
        assert len(cdag.vertices_of("E")) == 12  # N*K*M accumulation versions
        # inputs: A (3 distinct elements), B (3), D (M*K = 6)
        assert len(cdag.inputs) == 12

    def test_versions_chain(self):
        acc = stmt(
            "acc", {"i": "N", "k": "N"},
            ref("s", "i"), ref("s", "i"), ref("A", "i,k"),
        )
        cdag = build_cdag(Program.make("acc", [acc]), {"N": 2})
        versions = cdag.vertices_of("s")
        assert len(versions) == 4  # two accumulations per element
        # each later version depends on the previous one
        chained = [
            (u, v) for u, v in cdag.graph.edges
            if u in versions and v in versions
        ]
        assert len(chained) == 2

    def test_shared_loop_interleaves_statements(self):
        """Ping-pong sweeps in a shared t loop must alternate."""
        b = stmt("sb", {"t": "T", "i": "N"}, ref("B", "i"), ref("A", "i"))
        a = stmt("sa", {"t": "T", "i": "N"}, ref("A", "i"), ref("B", "i"))
        cdag = build_cdag(Program.make("pp", [b, a]), {"T": 2, "N": 2})
        # B at t=1 must read A written at t=0 (not the input).
        b_versions = sorted(cdag.vertices_of("B"))
        later = [v for v in b_versions if v[3] == 1]  # version 1 of B elements
        for v in later:
            parents = list(cdag.graph.predecessors(v))
            assert all(p[0] == "v" for p in parents)

    def test_guard_restricts_domain(self):
        program = parse_python(
            "for k in range(N):\n"
            "    for i in range(k + 1, N):\n"
            "        A[i, k] = B[i, k]\n",
            name="tri",
        )
        cdag = build_cdag(program, {"N": 4})
        assert len(cdag.vertices_of("A")) == 6  # strictly-lower triangle

    def test_bad_params_raise(self):
        s = stmt("s", {"i": "N"}, ref("A", "i"), ref("B", "i"))
        from repro.util.errors import SoapError

        with pytest.raises(SoapError):
            build_cdag(Program.make("p", [s]), {})


class TestDominator:
    def test_chain_dominator_is_one(self):
        g = nx.DiGraph([(0, 1), (1, 2), (2, 3)])
        assert min_dominator_size(g, [3]) == 1

    def test_diamond(self):
        g = nx.DiGraph([(0, 1), (0, 2), (1, 3), (2, 3)])
        assert min_dominator_size(g, [3]) == 1  # the input 0 cuts everything

    def test_two_independent_paths(self):
        g = nx.DiGraph([(0, 2), (1, 3)])
        assert min_dominator_size(g, [2, 3]) == 2

    def test_empty_targets(self):
        g = nx.DiGraph([(0, 1)])
        assert min_dominator_size(g, []) == 0

    def test_gemm_tile_dominator(self):
        """A full MMM CDAG needs all 2N^2 inputs to compute everything."""
        gemm = stmt(
            "gemm", {"i": "N", "j": "N", "k": "N"},
            ref("C", "i,j"), ref("C", "i,j"), ref("A", "i,k"), ref("B", "k,j"),
        )
        cdag = build_cdag(Program.make("gemm", [gemm]), {"N": 2})
        size = min_dominator_size(cdag.graph, cdag.vertices_of("C"))
        assert size == 8  # |A| + |B| = 2 * N^2

    def test_min_set(self):
        g = nx.DiGraph([(0, 1), (1, 2)])
        assert min_set(g, {0, 1}) == {1}
        assert min_set(g, {0, 2}) == {0, 2}
