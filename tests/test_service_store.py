"""The shared solve store: sqlite tier, claims protocol, crash recovery.

The fleet invariant under test: whatever races, **each canonical problem
key is solved exactly once** and every process sees the same decoded
outcome.  Crash safety rides on claim leases -- a killed claim holder
delays the solve by at most one lease, never wedges it.
"""

import json
import multiprocessing
import sqlite3
import threading
import time

import pytest
import sympy as sp

from repro.engine import SolveOutcome
from repro.engine.store import SharedSolveStore
from repro.opt.kkt import ChiSolution
from repro.symbolic.symbols import S_SYM, X_SYM


def _outcome(note: str = "test") -> SolveOutcome:
    return SolveOutcome(
        solution=ChiSolution(
            chi=X_SYM**2 / S_SYM,
            tiles={"i": sp.Symbol("b_0", positive=True)},
            capped=(),
            pinned=("j",),
            exact=True,
            notes=(note,),
        )
    )


class TestStoreBasics:
    def test_put_get_round_trip(self, tmp_path):
        store = SharedSolveStore(tmp_path / "solves.sqlite")
        assert store.get("sig-exact-r2") is None
        store.put("sig-exact-r2", _outcome("round-trip"))
        loaded = store.get("sig-exact-r2")
        assert loaded is not None and loaded.ok
        assert loaded.solution.chi == X_SYM**2 / S_SYM
        assert loaded.solution.pinned == ("j",)
        assert loaded.solution.notes == ("round-trip",)
        assert store.entry_count() == 1
        assert store.stats.hits == 1 and store.stats.misses == 1

    def test_negative_entry_round_trip(self, tmp_path):
        store = SharedSolveStore(tmp_path / "solves.sqlite")
        store.put("bad-exact-r2", SolveOutcome(error="unbounded"))
        loaded = store.get("bad-exact-r2")
        assert loaded is not None and not loaded.ok
        assert loaded.error == "unbounded"

    def test_second_handle_sees_first_handles_solves(self, tmp_path):
        path = tmp_path / "solves.sqlite"
        SharedSolveStore(path).put("shared", _outcome())
        other = SharedSolveStore(path)
        assert other.get("shared") is not None
        assert other.stats.hits == 1

    def test_corrupt_payload_reads_as_miss(self, tmp_path):
        path = tmp_path / "solves.sqlite"
        store = SharedSolveStore(path)
        store.put("sig", _outcome())
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE solves SET payload='not json' WHERE key='sig'"
            )
        assert store.get("sig") is None

    def test_stale_schema_reads_as_miss(self, tmp_path):
        path = tmp_path / "solves.sqlite"
        store = SharedSolveStore(path)
        store.put("sig", _outcome())
        with sqlite3.connect(path) as conn:
            conn.execute(
                "UPDATE solves SET payload=? WHERE key='sig'",
                (json.dumps({"schema": -1, "status": "ok"}),),
            )
        assert store.get("sig") is None

    def test_report_artifacts(self, tmp_path):
        store = SharedSolveStore(tmp_path / "solves.sqlite")
        assert store.get_report("kernel:gemm") is None
        store.put_report("kernel:gemm", {"bound": "2*N**3/sqrt(S)"})
        assert store.get_report("kernel:gemm") == {"bound": "2*N**3/sqrt(S)"}
        assert store.report_count() == 1
        assert store.stats.report_hits == 1
        assert store.stats.report_misses == 1

    def test_rejects_bad_lease_and_poll(self, tmp_path):
        with pytest.raises(ValueError):
            SharedSolveStore(tmp_path / "a.sqlite", lease_seconds=0)
        with pytest.raises(ValueError):
            SharedSolveStore(tmp_path / "b.sqlite", poll_seconds=-1)


class TestClaims:
    def test_claim_then_put_resolves_waiters(self, tmp_path):
        path = tmp_path / "solves.sqlite"
        first = SharedSolveStore(path)
        second = SharedSolveStore(path)
        status, outcome = first.try_claim("sig")
        assert (status, outcome) == ("acquired", None)
        assert second.try_claim("sig") == ("busy", None)
        first.put("sig", _outcome())
        status, outcome = second.try_claim("sig")
        assert status == "solved" and outcome.ok
        assert first.claim_count() == 0

    def test_release_frees_the_slot(self, tmp_path):
        path = tmp_path / "solves.sqlite"
        first = SharedSolveStore(path)
        second = SharedSolveStore(path)
        assert first.try_claim("sig")[0] == "acquired"
        first.release("sig")
        assert first.claim_count() == 0
        assert second.try_claim("sig")[0] == "acquired"

    def test_release_only_drops_own_claims(self, tmp_path):
        path = tmp_path / "solves.sqlite"
        first = SharedSolveStore(path)
        second = SharedSolveStore(path)
        assert first.try_claim("sig")[0] == "acquired"
        second.release("sig")  # not the owner: must be a no-op
        assert first.claim_count() == 1

    def test_expired_lease_is_reclaimed(self, tmp_path):
        path = tmp_path / "solves.sqlite"
        first = SharedSolveStore(path, lease_seconds=0.05)
        second = SharedSolveStore(path, lease_seconds=0.05)
        assert first.try_claim("sig")[0] == "acquired"
        time.sleep(0.1)
        assert second.try_claim("sig")[0] == "acquired"
        assert second.stats.reclaims == 1

    def test_wait_for_coalesces_on_other_solve(self, tmp_path):
        path = tmp_path / "solves.sqlite"
        first = SharedSolveStore(path)
        second = SharedSolveStore(path, poll_seconds=0.005)
        assert first.try_claim("sig")[0] == "acquired"

        def _finish():
            time.sleep(0.05)
            first.put("sig", _outcome("from-first"))

        thread = threading.Thread(target=_finish)
        thread.start()
        try:
            outcome, how = second.wait_for("sig")
        finally:
            thread.join()
        assert how == "coalesced" and outcome.ok
        assert second.stats.coalesced == 1 and second.stats.waits == 1

    def test_solve_once_skips_solver_on_hit(self, tmp_path):
        store = SharedSolveStore(tmp_path / "solves.sqlite")
        store.put("sig", _outcome())

        def _never():
            raise AssertionError("solved a key that was already done")

        assert store.solve_once("sig", _never).ok

    def test_failed_solve_releases_the_claim(self, tmp_path):
        store = SharedSolveStore(tmp_path / "solves.sqlite")

        def _boom():
            raise RuntimeError("solver exploded")

        with pytest.raises(RuntimeError):
            store.solve_once("sig", _boom)
        assert store.claim_count() == 0
        # the slot is free again: a retry can claim and solve
        assert store.solve_once("sig", _outcome).ok


def _race_entry(path, counter, results, index):
    store = SharedSolveStore(path, poll_seconds=0.005)

    def _solve():
        with counter.get_lock():
            counter.value += 1
        time.sleep(0.05)
        return _outcome("raced")

    outcome = store.solve_once("sig-race", _solve)
    results[index] = 1 if outcome.ok else 0


def _claim_and_hang(path):
    store = SharedSolveStore(path, lease_seconds=0.2)
    store.try_claim("sig-crash")
    time.sleep(60)  # killed long before this returns


class TestCrossProcess:
    def test_two_processes_solve_exactly_once(self, tmp_path):
        """The acceptance invariant: N racing processes, one solve."""
        path = str(tmp_path / "solves.sqlite")
        ctx = multiprocessing.get_context("fork")
        counter = ctx.Value("i", 0)
        results = ctx.Array("i", [0, 0])
        procs = [
            ctx.Process(target=_race_entry, args=(path, counter, results, i))
            for i in range(2)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
        assert all(proc.exitcode == 0 for proc in procs)
        assert list(results) == [1, 1]
        assert counter.value == 1, "the same signature was solved twice"
        store = SharedSolveStore(path)
        assert store.entry_count() == 1
        assert store.claim_count() == 0

    def test_killed_claim_holder_is_reclaimed(self, tmp_path):
        """A crashed worker's claim expires; the next arrival re-solves."""
        path = str(tmp_path / "solves.sqlite")
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=_claim_and_hang, args=(path,))
        proc.start()
        try:
            survivor = SharedSolveStore(
                path, lease_seconds=0.2, poll_seconds=0.01
            )
            deadline = time.monotonic() + 10
            while survivor.claim_count() == 0:
                assert time.monotonic() < deadline, "claim never appeared"
                time.sleep(0.01)
            proc.kill()
            proc.join(timeout=10)
            outcome, how = survivor.wait_for(
                "sig-crash", solve=lambda: _outcome("recovered")
            )
            assert how == "solved" and outcome.ok
            assert outcome.solution.notes == ("recovered",)
            assert survivor.stats.reclaims == 1
            assert survivor.entry_count() == 1
            assert survivor.claim_count() == 0
        finally:
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=10)

    def test_fork_reopens_connection_and_owner(self, tmp_path):
        """A forked child must not reuse the parent's sqlite connection
        (or its claim-ownership token)."""
        path = str(tmp_path / "solves.sqlite")
        store = SharedSolveStore(path)
        assert store.try_claim("parent-claim")[0] == "acquired"
        parent_owner = store.owner
        ctx = multiprocessing.get_context("fork")

        def _child(store, queue):
            store.release("parent-claim")  # child owner differs: no-op
            queue.put((store.owner, store.claim_count()))

        queue = ctx.Queue()
        proc = ctx.Process(target=_child, args=(store, queue))
        proc.start()
        child_owner, child_claims = queue.get(timeout=30)
        proc.join(timeout=30)
        assert child_owner != parent_owner
        assert child_claims == 1, "child released the parent's claim"
        assert store.owner == parent_owner
