"""Observability: spans, cross-process stitching, metrics, exports."""

import json
import multiprocessing
import os
import threading

import pytest

from repro.obs import (
    NULL_SPAN,
    MetricsRegistry,
    Tracer,
    attach,
    current_span,
    percentile,
    read_trace,
    span,
    span_tree,
    to_chrome_trace,
    trace_context,
    tracing,
    validate_trace,
)
from repro.obs.rss import peak_rss_bytes


class TestPercentile:
    """Nearest-rank definition, pinned (the old round() version was wrong)."""

    def test_empty_is_none(self):
        assert percentile([], 50) is None

    def test_single_sample_every_quantile(self):
        for q in (0, 50, 99, 100):
            assert percentile([7.0], q) == 7.0

    def test_p0_is_minimum(self):
        assert percentile([4.0, 1.0, 3.0, 2.0], 0) == 1.0

    def test_p100_is_maximum(self):
        assert percentile([4.0, 1.0, 3.0, 2.0], 100) == 4.0

    def test_p50_nearest_rank_even_count(self):
        # ceil(0.5 * 4) = rank 2 -> the 2nd smallest, NOT the 3rd (the old
        # round()-based index landed on 3.0 here via banker's rounding)
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0

    def test_p99_small_sample(self):
        # ceil(0.99 * 4) = rank 4 -> the maximum
        assert percentile([1.0, 2.0, 3.0, 4.0], 99) == 4.0

    def test_p50_odd_count_is_median(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_service_reexport_is_fixed_version(self):
        from repro.service.metrics import percentile as service_percentile

        assert service_percentile is percentile


class TestSpans:
    def test_no_tracer_yields_null_span(self):
        with span("anything") as sp:
            assert sp is NULL_SPAN
            sp.add("counter")  # no-op, must not raise
            sp.note(attr=1)
        assert current_span() is NULL_SPAN

    def test_nesting_and_counters(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Tracer(path):
            with span("outer", kernel="gemm"):
                with span("inner") as sp:
                    sp.add("loads", 5)
                    sp.add("loads", 2)
        records = read_trace(path)
        assert validate_trace(records) == []
        by_name = {r["name"]: r for r in records}
        assert by_name["inner"]["parent"] == by_name["outer"]["span"]
        assert by_name["outer"]["parent"] is None
        assert by_name["inner"]["counters"] == {"loads": 7}
        assert by_name["outer"]["attrs"] == {"kernel": "gemm"}
        assert by_name["outer"]["wall"] >= by_name["inner"]["wall"] >= 0

    def test_span_tree_structure(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Tracer(path):
            with span("root"):
                with span("a"):
                    with span("leaf"):
                        pass
                with span("b"):
                    pass
        roots = span_tree(read_trace(path))
        assert [r["name"] for r in roots] == ["root"]
        children = [c["name"] for c in roots[0]["children"]]
        assert children == ["a", "b"]  # sorted by start time
        assert roots[0]["children"][0]["children"][0]["name"] == "leaf"

    def test_exception_records_error_and_unwinds_stack(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Tracer(path):
            with pytest.raises(RuntimeError):
                with span("failing"):
                    raise RuntimeError("boom")
            # the stack must be clean: a new span is a root, not a child
            with span("after"):
                pass
        by_name = {r["name"]: r for r in read_trace(path)}
        assert by_name["failing"]["attrs"]["error"] == "RuntimeError"
        assert by_name["after"]["parent"] is None

    def test_decorator_form(self, tmp_path):
        path = str(tmp_path / "t.jsonl")

        @span("decorated", flavor="test")
        def work(x):
            return x * 2

        with Tracer(path):
            assert work(21) == 42
        (record,) = read_trace(path)
        assert record["name"] == "decorated"
        assert record["attrs"] == {"flavor": "test"}

    def test_registry_counts_spans_without_a_sink(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)  # path-less: counts only
        with tracing(tracer):
            for _ in range(3):
                with span("counted"):
                    pass
        assert registry.span_counts() == {"counted": 3}
        assert len(registry.slowest_spans()) == 3


class TestCrossProcess:
    def test_forked_worker_stitches_under_driver(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        ctx = multiprocessing.get_context("fork")

        def worker(tctx):
            with attach(tctx):
                with span("child-work") as sp:
                    sp.add("items", 4)

        with Tracer(path) as tracer:
            with span("driver"):
                tctx = trace_context()
                assert tctx is not None
                assert tctx.path == path
                proc = ctx.Process(target=worker, args=(tctx,))
                proc.start()
                proc.join()
                assert proc.exitcode == 0
        records = read_trace(path)
        assert validate_trace(records) == []
        assert {r["trace"] for r in records} == {tracer.trace_id}
        by_name = {r["name"]: r for r in records}
        assert by_name["child-work"]["parent"] == by_name["driver"]["span"]
        assert by_name["child-work"]["pid"] != by_name["driver"]["pid"]
        assert by_name["child-work"]["counters"] == {"items": 4}

    def test_fork_does_not_inherit_active_tracer(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        ctx = multiprocessing.get_context("fork")

        def worker(queue):
            # forked mid-trace, but never attached: must not be tracing
            from repro.obs import current_tracer

            with span("orphan-would-be"):
                pass
            queue.put(current_tracer() is None)

        with Tracer(path):
            with span("driver"):
                queue = ctx.Queue()
                proc = ctx.Process(target=worker, args=(queue,))
                proc.start()
                proc.join()
        assert queue.get(timeout=5) is True
        names = {r["name"] for r in read_trace(path)}
        assert names == {"driver"}

    def test_parallel_sweep_trace_has_no_orphans(self, tmp_path):
        from repro.schedule.tightness import audit_corpus

        path = str(tmp_path / "sweep.jsonl")
        with Tracer(path):
            with span("driver"):
                report = audit_corpus(
                    ["atax"], s_values=(8,), jobs=2, chunk_size=64
                )
        assert report.rows and all(r.ok for r in report.rows)
        records = read_trace(path)
        assert validate_trace(records) == []
        assert len({r["trace"] for r in records}) == 1
        names = {r["name"] for r in records}
        assert {"driver", "tightness.audit", "engine.analyze", "replay"} <= names
        (root,) = span_tree(records)
        assert root["name"] == "driver"


class TestRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("hits", 2.0, kind="a")
        reg.inc("hits", 3.0, kind="b")
        reg.set_gauge("depth", 7.0)
        reg.max_gauge("peak", 5.0)
        reg.max_gauge("peak", 3.0)  # lower: must not regress
        reg.observe("lat", 0.25)
        assert reg.counter_value("hits", kind="a") == 2.0
        assert reg.counter_total("hits") == 5.0
        assert reg.counter_by_label("hits", "kind") == {"a": 2.0, "b": 3.0}
        assert reg.gauge_value("depth") == 7.0
        assert reg.gauge_value("peak") == 5.0
        assert reg.samples("lat") == [0.25]
        assert reg.counter_value("lat_count") == 1.0
        assert reg.counter_value("lat_sum") == 0.25

    def test_bounded_reservoir(self):
        reg = MetricsRegistry(reservoir=8)
        for i in range(100):
            reg.observe("lat", float(i))
        samples = reg.samples("lat")
        assert len(samples) == 8
        assert samples == [float(i) for i in range(92, 100)]  # most recent
        assert reg.counter_value("lat_count") == 100.0  # but counts all

    def test_concurrent_hammer_totals_add_up(self):
        reg = MetricsRegistry()
        threads, per_thread = 8, 500

        def hammer(index: int):
            for i in range(per_thread):
                reg.inc("total")
                reg.inc("labeled", 1.0, worker=str(index))
                reg.observe("lat", float(i))
                reg.max_gauge("peak", float(i))
                reg.observe_span("work", 0.001)

        pool = [
            threading.Thread(target=hammer, args=(i,)) for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        expected = float(threads * per_thread)
        assert reg.counter_value("total") == expected
        assert reg.counter_total("labeled") == expected
        assert reg.counter_value("lat_count") == expected
        assert reg.gauge_value("peak") == float(per_thread - 1)
        assert reg.span_counts() == {"work": threads * per_thread}

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.inc("hits", 1.0, kind="a")
        reg.observe("lat", 0.5)
        snap = reg.snapshot()
        assert snap["counters"]["hits"] == {"kind=a": 1.0}
        assert snap["histograms"]["lat"]["samples"] == 1
        assert snap["histograms"]["lat"]["p50"] == 0.5
        assert "spans" in snap


class TestPrometheus:
    def test_exposition_format(self):
        reg = MetricsRegistry()
        reg.inc("jobs_total", 3.0, state="done")
        reg.set_gauge("queue_depth", 2.0)
        reg.observe("run_seconds", 0.5)
        text = reg.prometheus()
        lines = text.strip().splitlines()
        assert 'repro_jobs_total{state="done"} 3' in lines
        assert "repro_queue_depth 2" in lines
        assert "# TYPE repro_jobs_total counter" in lines
        assert "# TYPE repro_queue_depth gauge" in lines
        assert 'repro_run_seconds{quantile="0.5"} 0.5' in lines
        assert "repro_run_seconds_count 1" in lines
        # format validation: every line is a comment or name{labels} value
        import re

        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9][0-9eE.+-]*$"
        )
        for line in lines:
            assert line.startswith("#") or sample.match(line), line

    def test_names_and_labels_escaped(self):
        reg = MetricsRegistry()
        reg.inc("bad-name.total", 1.0, path='with"quote')
        text = reg.prometheus()
        assert 'repro_bad_name_total{path="with\\"quote"} 1' in text


class TestExport:
    def _records(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with Tracer(path):
            with span("root", kernel="gemm"):
                with span("leaf") as sp:
                    sp.add("loads", 3)
        return read_trace(path)

    def test_chrome_trace_shape(self, tmp_path):
        records = self._records(tmp_path)
        chrome = to_chrome_trace(records)
        events = chrome["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 2
        assert meta and meta[0]["name"] == "process_name"
        by_name = {e["name"]: e for e in complete}
        # ts is rebased to the earliest span, microseconds
        assert by_name["root"]["ts"] == 0
        assert by_name["leaf"]["ts"] >= 0
        assert by_name["leaf"]["args"]["loads"] == 3
        assert by_name["leaf"]["args"]["parent_span_id"] == (
            by_name["root"]["args"]["span_id"]
        )
        json.dumps(chrome)  # must be JSON-serializable as-is

    def test_validate_catches_orphans_and_duplicates(self, tmp_path):
        records = self._records(tmp_path)
        assert validate_trace(records) == []
        orphaned = [dict(records[0], parent="feedfacefeedface")]
        assert any("orphan" in e for e in validate_trace(orphaned))
        dupes = [records[0], dict(records[0])]
        assert any("duplicate" in e for e in validate_trace(dupes))
        missing = [{k: v for k, v in records[0].items() if k != "wall"}]
        assert any("wall" in e for e in validate_trace(missing))


class TestCli:
    def _write_trace(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(str(path)):
            with span("root"):
                with span("leaf"):
                    pass
        return path

    def test_trace_validate_ok(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_trace(tmp_path)
        assert main(["trace", "validate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 spans" in out and "ok" in out

    def test_trace_validate_rejects_garbage(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "bad.jsonl"
        path.write_text('{"span": "x", "name": "y"}\n')
        assert main(["trace", "validate", str(path)]) == 1

    def test_trace_convert_writes_perfetto_json(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_trace(tmp_path)
        out_path = tmp_path / "out.json"
        assert main(["trace", "convert", str(path), "-o", str(out_path)]) == 0
        chrome = json.loads(out_path.read_text())
        assert any(e["ph"] == "X" for e in chrome["traceEvents"])

    def test_kernel_trace_flag_produces_valid_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "k.jsonl"
        assert main(["kernel", "atax", "--trace", str(path)]) == 0
        records = read_trace(str(path))
        assert validate_trace(records) == []
        names = {r["name"] for r in records}
        assert {"cli.kernel", "engine.analyze", "solve", "solver.solve-batch"} <= names
        batches = [r for r in records if r["name"] == "solver.solve-batch"]
        assert all(r["attrs"]["backend"] == "exact" for r in batches)
        assert sum(r["counters"]["solved"] for r in batches) >= 1


class TestRss:
    def test_peak_rss_positive_and_monotonic(self):
        first = peak_rss_bytes()
        assert first > 0
        ballast = bytearray(8 * 1024 * 1024)
        assert peak_rss_bytes() >= first
        del ballast

    def test_rss_scale_matches_platform(self):
        import sys as _sys

        from repro.obs.rss import _scale

        assert _scale() == (1 if _sys.platform == "darwin" else 1024)
