"""Optimization problem (8): numeric GP solver and exact KKT reconstruction."""

import math

import pytest
import sympy as sp
from hypothesis import given, settings, strategies as st

from repro.opt.kkt import ChiSolution, degree_in_x, leading_in_x, solve_chi
from repro.opt.numeric import solve_numeric
from repro.opt.rho import compare_intensity, intensity_from_chi
from repro.opt.tiling import tiles_at_x0
from repro.symbolic.posynomial import Monomial, Posynomial
from repro.symbolic.symbols import S_SYM, X_SYM, tile
from repro.util.errors import SolverError

bi, bj, bk, bl, bt = tile("i"), tile("j"), tile("k"), tile("l"), tile("t")


def _posy(expr, variables):
    return Posynomial.from_expr(expr, variables)


class TestNumeric:
    def test_mmm_optimum(self):
        obj = _posy(bi * bj * bk, [bi, bj, bk])
        con = _posy(bi * bk + bk * bj + bi * bj, [bi, bj, bk])
        sol = solve_numeric(obj, con, 3e6)
        assert sol.objective_value == pytest.approx((1e6) ** 1.5, rel=1e-3)
        for value in sol.tile_values.values():
            assert value == pytest.approx(1e3, rel=1e-2)

    def test_active_set_detection(self):
        # Low-order term b_i is inactive at the optimum.
        obj = _posy(bi * bj, [bi, bj])
        con = _posy(bi * bj + bi, [bi, bj])
        sol = solve_numeric(obj, con, 1e8)
        degrees = {tuple(sorted(v.name for v in t.variables())): a for t, a in zip(con.terms, sol.active)}
        assert degrees[("b_i", "b_j")] is True
        assert degrees[("b_i",)] is False

    def test_rejects_empty_constraint(self):
        with pytest.raises(SolverError):
            solve_numeric(_posy(bi, [bi]), Posynomial(()), 1e6)

    def test_rejects_nonpositive_coefficients(self):
        con = Posynomial([Monomial.make(-1, {bi: 1})])
        with pytest.raises(SolverError):
            solve_numeric(_posy(bi, [bi]), con, 1e6)


class TestSolveChiCanonical:
    def test_mmm(self):
        sol = solve_chi(
            _posy(bi * bj * bk, [bi, bj, bk]),
            _posy(bi * bk + bk * bj + bi * bj, [bi, bj, bk]),
        )
        assert sol.exact
        assert sp.simplify(sol.chi - sp.sqrt(3) * X_SYM ** sp.Rational(3, 2) / 9) == 0
        for expr in sol.tiles.values():
            assert sp.simplify(expr - sp.sqrt(X_SYM / 3)) == 0

    def test_linear_alpha_one(self):
        sol = solve_chi(_posy(2 * bi * bj, [bi, bj]), _posy(bi * bj, [bi, bj]))
        assert sp.simplify(sol.chi - 2 * X_SYM) == 0

    def test_coupled_budget_split(self):
        # gesummv shape: separate matrices must share the budget (rho = 1).
        obj = _posy(bi * bj + bi * bl, [bi, bj, bl])
        con = _posy(bi * bj + bi * bl, [bi, bj, bl])
        sol = solve_chi(obj, con)
        assert sp.simplify(sol.chi - X_SYM) == 0

    def test_stencil_surface(self):
        sol = solve_chi(_posy(2 * bi * bt, [bi, bt]), _posy(2 * bt + bi, [bi, bt]))
        assert sp.simplify(sol.chi - X_SYM**2 / 4) == 0

    def test_capping_unconstrained_variable(self):
        N = sp.Symbol("N", positive=True)
        sol = solve_chi(
            _posy(bi * bj, [bi, bj]),
            _posy(bi, [bi]),
            {"j": N},
        )
        assert "j" in sol.capped
        assert sp.simplify(sol.chi - N * X_SYM) == 0

    def test_capping_requires_extent(self):
        with pytest.raises(SolverError):
            solve_chi(_posy(bi * bj, [bi, bj]), _posy(bi, [bi]), {})

    def test_interior_only_rejects_caps(self):
        N = sp.Symbol("N", positive=True)
        with pytest.raises(SolverError):
            solve_chi(
                _posy(bi * bj, [bi, bj]),
                _posy(bi, [bi]),
                {"j": N},
                allow_caps=False,
            )

    def test_interior_only_rejects_true_boundary(self):
        # max b_i*b_j*b_k s.t. b_i*b_k + b_i*b_j: stationarity forces a pin.
        obj = _posy(bi * bj * bk, [bi, bj, bk])
        con = _posy(bi * bk + bi * bj, [bi, bj, bk])
        with pytest.raises(SolverError):
            solve_chi(obj, con, {"i": sp.Symbol("N", positive=True)}, allow_pinning=False)

    def test_degenerate_boundary_recovers_interior(self):
        # alpha = 1 with underdetermined split: SLSQP may pin a tile, but an
        # equivalent interior optimum exists and must be used.
        obj = _posy(4 * bi * bj * bk, [bi, bj, bk])
        con = _posy(bi * bj * bk, [bi, bj, bk])
        sol = solve_chi(obj, con, allow_pinning=False)
        assert sp.simplify(sol.chi - 4 * X_SYM) == 0

    def test_degree_helpers(self):
        expr = 3 * X_SYM ** sp.Rational(3, 2) + X_SYM
        assert degree_in_x(expr) == sp.Rational(3, 2)
        assert sp.simplify(leading_in_x(expr) - 3 * X_SYM ** sp.Rational(3, 2)) == 0


class TestIntensity:
    def test_mmm_rho(self):
        sol = ChiSolution(chi=sp.sqrt(3) * X_SYM ** sp.Rational(3, 2) / 9)
        res = intensity_from_chi(sol)
        assert sp.simplify(res.rho - sp.sqrt(S_SYM) / 2) == 0
        assert sp.simplify(res.x0 - 3 * S_SYM) == 0

    def test_alpha_one_rho_is_coefficient(self):
        res = intensity_from_chi(ChiSolution(chi=2 * X_SYM))
        assert res.rho == 2
        assert res.x0 is sp.oo

    def test_alpha_two(self):
        res = intensity_from_chi(ChiSolution(chi=X_SYM**2 / 4))
        assert sp.simplify(res.x0 - 2 * S_SYM) == 0
        assert sp.simplify(res.rho - S_SYM) == 0

    def test_sublinear_rejected(self):
        with pytest.raises(SolverError):
            intensity_from_chi(ChiSolution(chi=sp.sqrt(X_SYM)))

    def test_rho_value_numeric(self):
        res = intensity_from_chi(ChiSolution(chi=X_SYM**2 / 4))
        assert res.rho_value(64) == pytest.approx(64.0)

    def test_compare_intensity_orders_growth(self):
        assert compare_intensity(S_SYM, sp.sqrt(S_SYM)) == 1
        assert compare_intensity(sp.sqrt(S_SYM), S_SYM) == -1
        assert compare_intensity(S_SYM / 2, S_SYM / 2) == 0
        assert compare_intensity(2 * S_SYM, S_SYM) == 1

    def test_compare_intensity_constants(self):
        assert compare_intensity(sp.Integer(3), sp.Integer(2)) == 1

    def test_tiles_at_x0(self):
        sol = solve_chi(
            _posy(bi * bj * bk, [bi, bj, bk]),
            _posy(bi * bk + bk * bj + bi * bj, [bi, bj, bk]),
        )
        res = intensity_from_chi(sol)
        tiles = tiles_at_x0(res)
        for expr in tiles.values():
            assert sp.simplify(expr - sp.sqrt(S_SYM)) == 0


# ---------------------------------------------------------------------------
# property-based: exact chi always matches an independent numeric solve
# ---------------------------------------------------------------------------

_var_pool = [bi, bj, bk]


@st.composite
def _gp_instances(draw):
    n_terms = draw(st.integers(2, 4))
    terms = []
    for _ in range(n_terms):
        exponents = {
            v: draw(st.integers(0, 1)) for v in _var_pool
        }
        if not any(exponents.values()):
            exponents[bi] = 1
        coeff = draw(st.integers(1, 3))
        terms.append(Monomial.make(coeff, exponents))
    constraint = Posynomial(terms)
    # Objective: product of every variable appearing in the constraint.
    obj_powers = {v: 1 for v in constraint.variables()}
    objective = Posynomial([Monomial.make(1, obj_powers)])
    return objective, constraint


@given(instance=_gp_instances())
@settings(max_examples=25, deadline=None)
def test_chi_matches_numeric_optimum(instance):
    objective, constraint = instance
    try:
        sol = solve_chi(objective, constraint)
    except SolverError:
        return  # fit rejected: nothing to check
    x_val = 1e8
    numeric = solve_numeric(objective, constraint, x_val)
    symbolic_value = float(sol.chi.subs(X_SYM, x_val))
    assert math.isclose(symbolic_value, numeric.objective_value, rel_tol=2e-2)
