"""Concurrent access to a shared on-disk solve cache.

Two (or more) processes pointing at one ``--cache-dir`` must never corrupt
entries -- every file in the directory has to stay a valid, decodable cache
record -- and a warm reader must see a fully usable cache (no lingering
misses beyond the transient double-solve window while writers race).
"""

import json
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.engine import SolveCache, SolveOutcome
from repro.engine.cache import _SCHEMA, _decode
from repro.opt.kkt import ChiSolution

import sympy as sp


def _analyze_with_cache(task):
    """Run one kernel against the shared disk cache (subprocess target)."""
    name, cache_dir = task
    from repro.analysis import analyze_kernel
    from repro.symbolic.printing import bound_str

    result = analyze_kernel(name, cache_dir=cache_dir)
    return name, bound_str(result.bound)


def _hammer_cache(task):
    """Write/read a fixed signature set against one directory (subprocess)."""
    worker, cache_dir, rounds = task
    from repro.symbolic.symbols import S_SYM, X_SYM

    cache = SolveCache(cache_dir)
    outcome = SolveOutcome(
        solution=ChiSolution(
            chi=X_SYM**2 / S_SYM,
            tiles={"i": sp.Symbol("b_0", positive=True)},
            capped=(),
            pinned=(),
            exact=True,
            notes=(f"writer {worker}",),
        )
    )
    for round_no in range(rounds):
        for index in range(8):
            signature = f"sig{index:02d}"
            cache.put(signature, outcome)
            loaded = cache._load_disk(signature)  # bypass the memory tier
            assert loaded is not None, f"unreadable entry {signature}"
            assert loaded.ok
    return worker


def _entries(cache_dir: str) -> list[Path]:
    return sorted(Path(cache_dir).glob("*.json"))


class TestSharedDiskCache:
    def test_two_processes_same_kernel(self, tmp_path):
        """Simultaneous cold runs over one cache dir agree and stay clean."""
        cache_dir = str(tmp_path / "cache")
        tasks = [("gemm", cache_dir)] * 2 + [("atax", cache_dir)] * 2
        with ProcessPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(_analyze_with_cache, tasks))
        bounds = {}
        for name, bound in results:
            bounds.setdefault(name, set()).add(bound)
        assert bounds["gemm"] == {"2*N**3/sqrt(S)"}
        assert all(len(values) == 1 for values in bounds.values())
        for path in _entries(cache_dir):
            payload = json.loads(path.read_text())  # never truncated/corrupt
            assert payload["schema"] == _SCHEMA
            assert _decode(payload) is not None
        assert not list(Path(cache_dir).glob(".*.tmp")), "leaked temp files"

    def test_warm_process_solves_nothing(self, tmp_path):
        """After racing writers finish, a fresh process runs all-hits."""
        cache_dir = str(tmp_path / "cache")
        with ProcessPoolExecutor(max_workers=2) as pool:
            list(pool.map(_analyze_with_cache, [("gemm", cache_dir)] * 2))
        cache = SolveCache(cache_dir)
        from repro.analysis import analyze_kernel
        from repro.engine import Engine

        result = analyze_kernel("gemm", engine=Engine(cache=cache))
        assert result.program_bound.diagnostics.cache.misses == 0
        assert result.program_bound.diagnostics.cache.disk_hits >= 1

    def test_put_get_hammer_across_processes(self, tmp_path):
        """Racing writers on identical signatures never publish torn files."""
        cache_dir = str(tmp_path / "cache")
        tasks = [(worker, cache_dir, 12) for worker in range(4)]
        with ProcessPoolExecutor(max_workers=4) as pool:
            finished = list(pool.map(_hammer_cache, tasks))
        assert sorted(finished) == [0, 1, 2, 3]
        entries = _entries(cache_dir)
        assert len(entries) == 8
        from repro.symbolic.symbols import S_SYM, X_SYM

        reader = SolveCache(cache_dir)
        for path in entries:
            outcome = reader.get(path.stem)
            assert outcome is not None and outcome.ok
            assert outcome.solution.chi == X_SYM**2 / S_SYM
        assert reader.stats.disk_hits == 8
        assert reader.stats.misses == 0
        assert not list(Path(cache_dir).glob(".*.tmp"))
