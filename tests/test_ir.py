"""IR unit tests: affine indices, accesses, domains, statements, programs."""

import pytest
import sympy as sp

from repro.ir import (
    AffineIndex,
    Array,
    ArrayAccess,
    IterationDomain,
    Program,
    Statement,
)
from repro.kernels.common import parse_index, ref, stmt
from repro.util.errors import NotSoapError


class TestAffineIndex:
    def test_var_constructor(self):
        idx = AffineIndex.var("i", -1)
        assert idx.is_single_var and idx.single_var == "i" and idx.offset == -1

    def test_const(self):
        idx = AffineIndex.const(5)
        assert idx.is_constant and idx.offset == 5

    def test_zero_coefficients_removed(self):
        idx = AffineIndex.make({"i": 1, "j": 0}, 0)
        assert idx.variables() == ("i",)

    def test_difference_offset_same_linear_part(self):
        a = AffineIndex.var("i", 2)
        b = AffineIndex.var("i", -1)
        assert a.difference_offset(b) == 3

    def test_difference_offset_none_for_different_parts(self):
        assert AffineIndex.var("i").difference_offset(AffineIndex.var("j")) is None

    def test_renamed(self):
        idx = AffineIndex.make({"i": 1, "k": -1}, 1).renamed({"k": "j"})
        assert set(idx.variables()) == {"i", "j"}

    def test_evaluate(self):
        idx = AffineIndex.make({"i": 2, "j": -1}, 3)
        assert idx.evaluate({"i": 5, "j": 4}) == 9

    def test_str_formats(self):
        assert str(AffineIndex.var("i", 1)) == "i+1"
        assert str(AffineIndex.var("i", -1)) == "i-1"
        assert str(AffineIndex.const(0)) == "0"

    def test_parse_index_multi_var(self):
        idx = parse_index("k-i-1")
        assert idx.evaluate({"k": 5, "i": 2}) == 2

    def test_parse_index_coefficient(self):
        idx = parse_index("2*w+r")
        assert idx.evaluate({"w": 3, "r": 1}) == 7


class TestArrayAccess:
    def test_ref_builder(self):
        acc = ref("A", "i-1,t", "i,t", "i+1,t")
        assert acc.n_components == 3 and acc.dim == 2

    def test_rank_consistency_enforced(self):
        with pytest.raises(ValueError):
            ArrayAccess("A", ((AffineIndex.var("i"),), (AffineIndex.var("i"), AffineIndex.var("j"))))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ArrayAccess("A", ())

    def test_variables_in_order(self):
        acc = ref("A", "k,j", "i,j")
        assert acc.variables() == ("k", "j", "i")

    def test_merged_with_dedups(self):
        a = ref("A", "i,j")
        b = ref("A", "i,j", "i+1,j")
        merged = a.merged_with(b)
        assert merged.n_components == 2

    def test_merged_with_rejects_other_array(self):
        with pytest.raises(ValueError):
            ref("A", "i").merged_with(ref("B", "i"))


class TestIterationDomain:
    def test_default_total_is_product(self):
        d = IterationDomain.make({"i": "N", "j": "M"})
        N, M = sp.Symbol("N", positive=True), sp.Symbol("M", positive=True)
        assert sp.simplify(d.total - N * M) == 0

    def test_explicit_total(self):
        N = sp.Symbol("N", positive=True)
        d = IterationDomain.make({"i": "N", "j": "N"}, total=N**2 / 2)
        assert sp.simplify(d.total - N**2 / 2) == 0

    def test_extent_lookup(self):
        d = IterationDomain.make({"i": "N"})
        assert d.extent("i") == sp.Symbol("N", positive=True)
        with pytest.raises(KeyError):
            d.extent("zz")

    def test_with_variable_counts_total(self):
        d = IterationDomain.make({"i": "N"}).with_variable("j", "M")
        N, M = sp.Symbol("N", positive=True), sp.Symbol("M", positive=True)
        assert sp.simplify(d.total - N * M) == 0

    def test_with_variable_version_dim_keeps_total(self):
        d = IterationDomain.make({"i": "N"}).with_variable("v", "N", count_in_total=False)
        assert sp.simplify(d.total - sp.Symbol("N", positive=True)) == 0

    def test_with_variable_rejects_duplicates(self):
        with pytest.raises(ValueError):
            IterationDomain.make({"i": "N"}).with_variable("i", "N")

    def test_renamed(self):
        d = IterationDomain.make({"i": "N"}).renamed({"i": "x"})
        assert d.variables == ("x",)


class TestStatementAndProgram:
    def _gemm(self):
        return stmt(
            "gemm",
            {"i": "N", "j": "N", "k": "N"},
            ref("C", "i,j"),
            ref("C", "i,j"),
            ref("A", "i,k"),
            ref("B", "k,j"),
        )

    def test_output_single_component(self):
        with pytest.raises(NotSoapError):
            Statement(
                "bad",
                IterationDomain.make({"i": "N"}),
                ref("A", "i", "i+1"),
                (),
            )

    def test_inputs_grouped_per_array(self):
        with pytest.raises(NotSoapError):
            Statement(
                "bad",
                IterationDomain.make({"i": "N"}),
                ref("C", "i"),
                (ref("A", "i"), ref("A", "i+1")),
            )

    def test_updates_output(self):
        assert self._gemm().updates_output

    def test_program_synthesizes_arrays(self):
        program = Program.make("p", [self._gemm()])
        names = {a.name for a in program.arrays}
        assert names == {"A", "B", "C"}

    def test_program_rejects_rank_clash(self):
        bad = stmt("s", {"i": "N"}, ref("A", "i"), ref("A", "i,i"))
        with pytest.raises(NotSoapError):
            Program.make("p", [bad])

    def test_computed_and_input_arrays(self):
        program = Program.make("p", [self._gemm()])
        assert program.computed_arrays() == ["C"]
        assert set(program.input_arrays()) == {"A", "B"}

    def test_vertex_count_from_domain(self):
        program = Program.make("p", [self._gemm()])
        N = sp.Symbol("N", positive=True)
        assert sp.simplify(program.vertex_count("C") - N**3) == 0

    def test_vertex_count_declared_override(self):
        N = sp.Symbol("N", positive=True)
        program = Program.make(
            "p", [self._gemm()], [Array("A", 2, N**2)]
        )
        assert sp.simplify(program.vertex_count("A") - N**2) == 0

    def test_vertex_count_unknown_raises(self):
        program = Program.make("p", [self._gemm()])
        with pytest.raises(KeyError):
            program.vertex_count("A")

    def test_parameters_sorted(self):
        program = Program.make("p", [self._gemm()])
        assert [s.name for s in program.parameters()] == ["N"]

    def test_statement_guard_renamed(self):
        s = stmt("s", {"i": "N"}, ref("A", "i"), ref("B", "i"))
        s = Statement(s.name, s.domain, s.output, s.inputs, guard="0 <= i < N")
        renamed = s.renamed({"i": "x"})
        assert renamed.guard == "0 <= x < N"
