"""Analysis service: HTTP API, priority queue, request coalescing, metrics."""

import threading

import pytest

from repro import __version__
from repro.analysis import analyze_kernel
from repro.reporting.serialize import kernel_report
from repro.service import (
    AnalysisService,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ServiceThread,
)

GEMM_SRC = (
    "for i in range(N):\n"
    "    for j in range(N):\n"
    "        for k in range(N):\n"
    "            C[i, j] = C[i, j] + A[i, k] * B[k, j]\n"
)

#: gemm with renamed loop variables: isomorphic, not textually identical
GEMM_SRC_RENAMED = (
    "for x in range(N):\n"
    "    for y in range(N):\n"
    "        for z in range(N):\n"
    "            C[x, y] = C[x, y] + A[x, z] * B[z, y]\n"
)


@pytest.fixture(scope="module")
def daemon():
    with ServiceThread(ServiceConfig(workers=2)) as thread:
        yield thread


@pytest.fixture()
def client(daemon):
    with ServiceClient(port=daemon.port) as c:
        yield c


class TestEndpoints:
    def test_healthz_reports_version(self, client):
        health = client.healthz()
        assert health.status == "ok"
        assert health.version == __version__
        assert health.workers == 2
        assert health.coalescing is True

    def test_kernel_result_identical_to_direct_analysis(self, client):
        record = client.kernel("gemm")
        assert record.ok
        direct = kernel_report(analyze_kernel("gemm"))
        for field in ("ours", "paper", "ratio", "shape_matches", "per_array"):
            assert record.result[field] == direct[field]
        assert record.result["version"] == __version__

    def test_analyze_source(self, client):
        record = client.analyze(GEMM_SRC, name="mygemm")
        assert record.ok
        assert record.result["bound"] == "2*N**3/sqrt(S)"
        assert record.result["program"] == "mygemm"

    def test_async_submit_then_poll(self, client):
        record = client.kernel("atax", wait=False)
        assert record.state in ("queued", "running", "done")
        finished = client.wait_for(record.id, timeout=120)
        assert finished.ok
        assert finished.result["kernel"] == "atax"

    def test_tightness_audit_endpoint(self, client):
        record = client.tightness(
            ["gemm"], s_values=[18], params={"N": 6}, wait=True, timeout=300
        )
        assert record.ok
        assert record.kind == "tightness"
        payload = record.result
        assert payload["report"] == "tightness"
        assert payload["summary"]["finite_gaps"] is True
        (row,) = payload["rows"]
        assert row["kernel"] == "gemm"
        assert row["params"] == {"N": 6}
        assert row["gap"] > 0

    def test_tightness_defaults_to_async(self, client):
        record = client.tightness(["gemm"], s_values=[8])
        done = client.wait_for(record.id, timeout=300)
        assert done.ok
        assert done.result["rows"][0]["s"] == 8

    def test_tightness_duplicates_coalesce(self, client):
        first = client.tightness(["gemm", "atax"], s_values=[8])
        duplicate = client.tightness(["gemm", "atax"], s_values=[8])
        assert duplicate.id == first.id
        assert client.wait_for(first.id, timeout=300).ok

    def test_tightness_jobs_parallelizes_sweep(self, client):
        """jobs rides through to the audit's process pool; the payload is
        identical to a serial audit (and still coalesces with one)."""
        record = client.tightness(
            ["gemm"], s_values=[18], jobs=2, wait=True, timeout=300
        )
        assert record.ok
        assert record.raw["request"]["jobs"] == 2
        (row,) = record.result["rows"]
        assert row["kernel"] == "gemm" and row["s"] == 18

    def test_tightness_bad_jobs_is_400(self, client):
        from repro.service.client import ServiceError

        with pytest.raises(ServiceError) as exc:
            client.tightness(["gemm"], s_values=[8], jobs=0)
        assert exc.value.status == 400

    def test_tightness_bool_jobs_is_400(self, client):
        """bool is an int subclass: "jobs": true must be rejected, not 1."""
        from repro.service.client import ServiceError

        with pytest.raises(ServiceError) as exc:
            client.tightness(["gemm"], s_values=[8], jobs=True)
        assert exc.value.status == 400

    @pytest.mark.parametrize("chunk", [0, -1, True, "big"])
    def test_tightness_bad_chunk_size_is_400(self, client, chunk):
        from repro.service.client import ServiceError

        with pytest.raises(ServiceError) as exc:
            client.tightness(["gemm"], s_values=[8], chunk_size=chunk)
        assert exc.value.status == 400

    def test_tightness_chunk_size_rides_through(self, client):
        """chunk_size reaches the audit; the payload is identical."""
        record = client.tightness(
            ["gemm"], s_values=[8], chunk_size=32, wait=True, timeout=300
        )
        assert record.ok
        assert record.raw["request"]["chunk_size"] == 32
        (row,) = record.result["rows"]
        assert row["kernel"] == "gemm" and row["s"] == 8

    def test_tightness_unknown_kernel_is_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client.tightness(["nope"])
        assert exc.value.status == 404

    def test_tightness_empty_selection_is_400(self, client):
        """An explicitly empty list must not trigger the full-corpus default."""
        with pytest.raises(ServiceError) as exc:
            client.tightness([])
        assert exc.value.status == 400

    def test_tightness_bad_body_is_400(self, client):
        with pytest.raises(ServiceError) as exc:
            client._request("POST", "/tightness", {"kernels": "gemm"})
        assert exc.value.status == 400

    def test_tightness_non_integer_values_are_400(self, client):
        """Element-type errors return a JSON 400, not a connection reset."""
        for body in (
            {"kernels": ["gemm"], "s_values": [None]},
            {"kernels": ["gemm"], "params": {"N": [4]}},
        ):
            with pytest.raises(ServiceError) as exc:
                client._request("POST", "/tightness", body)
            assert exc.value.status == 400

    def test_batch_submits_jobs(self, client):
        records = client.batch(["bicg", "mvt"], wait=True)
        assert [r.request["kernel"] for r in records] == ["bicg", "mvt"]
        assert all(r.ok for r in records)

    def test_unknown_kernel_is_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client.kernel("nope")
        assert exc.value.status == 404
        assert "unknown kernel" in str(exc.value)

    def test_unparsable_source_is_400(self, client):
        with pytest.raises(ServiceError) as exc:
            client.analyze("for i in range(N:\n    pass\n")
        assert exc.value.status == 400

    def test_missing_field_is_400(self, client):
        with pytest.raises(ServiceError) as exc:
            client._request("POST", "/kernel", {"priority": "high"})
        assert exc.value.status == 400
        assert "name" in str(exc.value)

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client._request("GET", "/nope")
        assert exc.value.status == 404

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServiceError) as exc:
            client.job("ffffffffffff")
        assert exc.value.status == 404

    def test_malformed_request_line_gets_400_response(self, daemon):
        """Protocol-level rejects still answer with JSON, not a bare close."""
        import socket

        with socket.create_connection(("127.0.0.1", daemon.port), timeout=10) as s:
            s.sendall(b"GARBAGE\r\n\r\n")
            data = s.recv(65536)
        assert data.startswith(b"HTTP/1.1 400")
        assert b"malformed request line" in data

    def test_bad_content_length_gets_400_response(self, daemon):
        import socket

        with socket.create_connection(("127.0.0.1", daemon.port), timeout=10) as s:
            s.sendall(b"POST /kernel HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
            data = s.recv(65536)
        assert data.startswith(b"HTTP/1.1 400")

    def test_jobs_metrics_label_is_normalized(self, client):
        record = client.kernel("gemm")
        client.job(record.id)
        requests = client.metrics()["requests"]
        assert "GET /jobs/<id>" in requests
        assert not any(record.id in key for key in requests)

    def test_metrics_shape(self, client):
        client.kernel("gemm")
        metrics = client.metrics()
        assert metrics["queue"]["depth"] == 0
        assert metrics["jobs"]["completed"] >= 1
        assert 0.0 <= metrics["coalescing"]["coalesce_rate"] <= 1.0
        assert set(metrics["stages"]) >= {"build-sdg", "solve", "combine"}
        assert metrics["cache"]["stores"] >= 1
        assert "hit_rate" in metrics["cache"]
        assert metrics["latency"]["samples"] >= 1

    def test_metrics_span_counts(self, client):
        """Every job runs under a registry tracer, even untraced ones."""
        client.kernel("gemm")
        spans = client.metrics()["spans"]
        assert spans["counts"].get("job", 0) >= 1
        assert spans["counts"].get("engine.analyze", 0) >= 1
        assert spans["slowest"]

    def test_metrics_prometheus_format(self, client):
        client.kernel("gemm")
        text = client.metrics_prometheus()
        lines = text.strip().splitlines()
        assert "# TYPE repro_service_jobs_submitted_total counter" in lines
        assert any(
            line.startswith("repro_engine_stage_seconds_total{stage=")
            for line in lines
        )
        import re

        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9][0-9eE.+-]*$"
        )
        for line in lines:
            assert line.startswith("#") or sample.match(line), line


class TestTracedJobs:
    def test_kernel_trace_embeds_span_tree(self, client):
        record = client.kernel("atax", trace=True)
        assert record.ok
        trace = record.result["trace"]
        assert trace["trace_id"]
        (root,) = trace["spans"]
        assert root["name"] == "job"
        names = set()

        def collect(node):
            names.add(node["name"])
            for child in node["children"]:
                collect(child)

        collect(root)
        assert {"engine.analyze", "build-sdg", "solve", "combine"} <= names

    def test_untraced_result_has_no_trace_key(self, client):
        record = client.kernel("atax")
        assert record.ok
        assert "trace" not in record.result

    def test_traced_and_untraced_do_not_coalesce(self):
        with ServiceThread(ServiceConfig(workers=1)) as thread:
            with ServiceClient(port=thread.port) as c:
                plain = c.kernel("doitgen", wait=False)
                traced = c.kernel("doitgen", wait=False, trace=True)
                assert plain.id != traced.id
                assert c.wait_for(plain.id, timeout=300).ok
                done = c.wait_for(traced.id, timeout=300)
                assert done.ok and "trace" in done.result

    def test_analyze_trace_flag(self, client):
        record = client.analyze(GEMM_SRC, name="traced-gemm", trace=True)
        assert record.ok
        assert record.result["trace"]["spans"]

    def test_tightness_trace_stitches_sweep_spans(self, client):
        record = client.tightness(
            ["atax"], s_values=[8], wait=True, trace=True
        )
        assert record.ok
        names = set()

        def collect(node):
            names.add(node["name"])
            for child in node["children"]:
                collect(child)

        for root in record.result["trace"]["spans"]:
            collect(root)
        assert {
            "job", "tightness.audit", "stream.build", "next-use", "replay"
        } <= names


class TestCoalescing:
    def test_concurrent_duplicates_share_one_job(self):
        """N identical in-flight requests -> one job, identical payloads."""
        with ServiceThread(ServiceConfig(workers=1)) as thread:
            records = []

            def hit():
                with ServiceClient(port=thread.port) as c:
                    records.append(c.kernel("trisolv"))

            threads = [threading.Thread(target=hit) for _ in range(5)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            assert len({r.id for r in records}) == 1
            assert len({str(r.result) for r in records}) == 1
            assert records[0].attached == 5
            with ServiceClient(port=thread.port) as c:
                coalescing = c.metrics()["coalescing"]
            assert coalescing["coalesced_total"] == 4
            assert coalescing["coalesce_rate"] > 0

    def test_isomorphic_sources_coalesce(self):
        """Renamed-loop-variable gemm attaches to the in-flight original."""
        with ServiceThread(ServiceConfig(workers=1)) as thread:
            with ServiceClient(port=thread.port) as c:
                # Occupy the single worker so both submissions stay in flight.
                blocker = c.kernel("lu", wait=False)
                first = c.analyze(GEMM_SRC, name="a", wait=False)
                second = c.analyze(GEMM_SRC_RENAMED, name="b", wait=False)
                assert first.id == second.id
                finished = c.wait_for(first.id, timeout=300)
                assert finished.ok
                assert finished.attached == 2
                c.wait_for(blocker.id, timeout=300)

    def test_sequential_requests_do_not_coalesce(self, client):
        """Coalescing is an in-flight property; finished jobs are not reused."""
        a = client.kernel("gemm")
        b = client.kernel("gemm")
        assert a.id != b.id
        def strip(r):
            return {k: v for k, v in r.items() if k != "diagnostics"}
        assert strip(a.result) == strip(b.result)

    def test_coalescing_can_be_disabled(self):
        with ServiceThread(ServiceConfig(workers=1, coalesce=False)) as thread:
            with ServiceClient(port=thread.port) as c:
                blocker = c.kernel("gemm", wait=False)
                duplicate = c.kernel("gemm", wait=False)
                assert blocker.id != duplicate.id
                c.wait_for(blocker.id, timeout=300)
                c.wait_for(duplicate.id, timeout=300)
                assert c.metrics()["coalescing"]["coalesced_total"] == 0


class TestPriorityQueue:
    def test_high_runs_before_low(self):
        """Queue pops by (rank, submission seq): high < normal < low."""
        service = AnalysisService(ServiceConfig(workers=1))  # workers not started
        low = service.submit_kernel("atax", priority="low")
        normal = service.submit_kernel("bicg", priority="normal")
        high = service.submit_kernel("mvt", priority="high")
        order = [service._queue.get_nowait()[2].id for _ in range(3)]
        assert order == [high.id, normal.id, low.id]

    def test_fifo_within_a_priority(self):
        service = AnalysisService(ServiceConfig(workers=1))
        first = service.submit_kernel("atax")
        second = service.submit_kernel("bicg")
        order = [service._queue.get_nowait()[2].id for _ in range(2)]
        assert order == [first.id, second.id]

    def test_coalesced_high_priority_escalates_queued_job(self):
        """A high-priority duplicate re-ranks the queued job it attaches to."""
        service = AnalysisService(ServiceConfig(workers=1))
        low = service.submit_kernel("atax", priority="low")
        normal = service.submit_kernel("bicg", priority="normal")
        escalated = service.submit_kernel("atax", priority="high")
        assert escalated is low
        assert low.priority == "high" and low.attached == 2
        order = []
        while not service._queue.empty():
            _, _, job = service._queue.get_nowait()
            if job.id not in order:
                order.append(job.id)
        # the escalated entry outranks normal; the stale low entry trails
        assert order == [low.id, normal.id]

    def test_unknown_priority_rejected(self):
        service = AnalysisService(ServiceConfig(workers=1))
        with pytest.raises(ValueError):
            service.submit_kernel("gemm", priority="urgent")

    def test_retired_jobs_are_evicted(self):
        service = AnalysisService(ServiceConfig(workers=1, max_retained_jobs=2))
        jobs = [service.submit_kernel(n) for n in ("atax", "bicg", "mvt")]
        for job in jobs:
            service._queue.get_nowait()
            service._retire(job)
        assert service.get_job(jobs[0].id) is None
        assert service.get_job(jobs[2].id) is not None


class TestFailedJobs:
    def test_engine_failure_surfaces_as_422(self):
        """A job that fails during analysis reports state=failed, not a 500."""
        with ServiceThread(ServiceConfig(workers=1)) as thread:
            with ServiceClient(port=thread.port) as c:
                # Scalar accumulation is rejected by the frontend at submit
                # time (400); a structurally valid program whose subgraphs
                # all fail to solve is hard to construct, so exercise the
                # submit-side rejection and the failed-job plumbing via a
                # job record round-trip instead.
                with pytest.raises(ServiceError) as exc:
                    c.analyze("x = 1\n")
                assert exc.value.status == 400
