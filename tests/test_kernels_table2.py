"""Table 2 regression: every kernel's derived bound is locked and compared.

Two layers of assertions per kernel:

1. the derived leading-order bound equals the regression-locked expression
   in ``repro.kernels.expected`` (any pipeline change that moves a bound
   fails here);
2. where the locked record says the *shape* matches the paper (38 of 40),
   the shape comparison is re-verified against the paper expression.
"""

import pytest
import sympy as sp

from repro.analysis import analyze_kernel
from repro.kernels import all_kernels, get_kernel, kernel_names
from repro.kernels.expected import EXPECTED_BOUNDS, SHAPE_MATCHES
from repro.symbolic.asymptotics import same_leading_shape
from repro.symbolic.parsing import parse_bound

ALL_NAMES = kernel_names()


def test_all_40_kernels_registered():
    assert len(ALL_NAMES) == 40
    assert len(kernel_names("polybench")) == 30
    assert len(kernel_names("nn")) == 7
    assert len(kernel_names("various")) == 3


def test_registry_lookup_errors():
    with pytest.raises(KeyError):
        get_kernel("definitely-not-a-kernel")


def test_every_kernel_has_locked_expectation():
    assert set(EXPECTED_BOUNDS) == set(ALL_NAMES)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_kernel_bound_regression(name):
    result = analyze_kernel(name)
    expected = parse_bound(EXPECTED_BOUNDS[name])
    assert sp.simplify(result.bound - expected) == 0, (
        f"{name}: derived {result.bound}, locked {expected}"
    )


@pytest.mark.parametrize(
    "name", [n for n in ALL_NAMES if SHAPE_MATCHES[n]]
)
def test_kernel_shape_matches_paper(name):
    spec = get_kernel(name)
    expected = parse_bound(EXPECTED_BOUNDS[name])
    assert same_leading_shape(expected, spec.paper_bound_expr()), (
        f"{name}: {expected} vs paper {spec.paper_bound_expr()}"
    )


def test_exact_reproductions_include_flagships():
    """Spot-check the paper's headline numbers are reproduced exactly."""
    exact = {
        "gemm": "2*N**3/sqrt(S)",
        "cholesky": "N**3/(3*sqrt(S))",
        "lu": "2*N**3/(3*sqrt(S))",
        "atax": "M*N",
        "seidel2d": "4*N**2*T/sqrt(S)",
        "floyd-warshall": "2*N**3/sqrt(S)",
        "syr2k": "2*M*N**2/sqrt(S)",
        "bert-encoder": "4*B*H*L*P*(2*H*P + L)/sqrt(S)",
    }
    for name, bound in exact.items():
        spec = get_kernel(name)
        assert sp.simplify(
            parse_bound(EXPECTED_BOUNDS[name]) - parse_bound(bound)
        ) == 0
        assert sp.simplify(
            parse_bound(bound) - spec.paper_bound_expr()
        ) == 0, name


def test_documented_deviations_are_only_adi_and_durbin():
    diffs = [n for n in ALL_NAMES if not SHAPE_MATCHES[n]]
    assert sorted(diffs) == ["adi", "durbin"]


@pytest.mark.parametrize("name", ALL_NAMES)
def test_kernel_programs_build_and_validate(name):
    program = get_kernel(name).build()
    assert program.statements
    assert program.computed_arrays()
    # Every statement's domain total must be a polynomial in the parameters.
    for st in program.statements:
        assert st.domain.total.free_symbols <= set(program.parameters())


def test_specs_have_descriptions_and_paper_bounds():
    for spec in all_kernels():
        assert spec.description
        assert spec.paper_bound_expr() is not None
