"""End-to-end chaos: real fleets under seeded fault plans.

The promise under test is the resilience layer's contract — a fault may
cost work (a requeue, a re-solve, a weaker-but-certified bound), never
correctness: every answer produced under an active plan is byte-identical
to fault-free or explicitly flagged.  These tests boot real daemons
(forked workers inherit the active plan) and inject worker SIGKILLs,
store corruption, and engine failures on deterministic schedules.
"""

import http.client
import multiprocessing
import time

import pytest
import sympy as sp
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import faults
from repro.engine import SolveOutcome
from repro.engine.store import SharedSolveStore
from repro.faults.chaos import run_chaos, strip_volatile
from repro.faults.plan import FaultPlan, FaultSpec
from repro.opt.kkt import ChiSolution
from repro.symbolic.symbols import S_SYM, X_SYM


def _outcome(note: str = "test") -> SolveOutcome:
    return SolveOutcome(
        solution=ChiSolution(
            chi=X_SYM**2 / S_SYM,
            tiles={"i": sp.Symbol("b_0", positive=True)},
            capped=(),
            pinned=(),
            exact=True,
            notes=(note,),
        )
    )


def _claim_then_injected_kill(path: str) -> None:
    """Child process: take a claim, then die to an injected SIGKILL."""
    plan = FaultPlan(
        seed=1,
        specs=[FaultSpec(site="worker.crash", action="kill", at=(1,))],
    )
    faults.activate(plan)
    store = SharedSolveStore(path, lease_seconds=0.2, poll_seconds=0.01)
    assert store.try_claim("sig-crash")[0] == "acquired"
    faults.inject("worker.crash")  # SIGKILL: no release, no cleanup
    raise AssertionError("unreachable: the kill site must fire")


class TestInjectedKillReclamation:
    def test_claim_lease_reclaimed_after_injected_sigkill(self, tmp_path):
        """A claim held by an injected-SIGKILL victim expires and is
        reclaimed — the deterministic twin of the manual proc.kill() test
        in test_service_store.py."""
        path = str(tmp_path / "solves.sqlite")
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=_claim_then_injected_kill, args=(path,))
        proc.start()
        try:
            survivor = SharedSolveStore(
                path, lease_seconds=0.2, poll_seconds=0.01
            )
            deadline = time.monotonic() + 30
            while survivor.claim_count() == 0:
                assert time.monotonic() < deadline, "claim never appeared"
                time.sleep(0.01)
            proc.join(timeout=30)
            assert proc.exitcode == -9, "child must die to the injected kill"
            outcome, how = survivor.wait_for(
                "sig-crash", solve=lambda: _outcome("recovered")
            )
            assert how == "solved" and outcome.ok
            assert survivor.stats.reclaims == 1
            assert survivor.claim_count() == 0
        finally:
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=10)


class TestServiceUnderFaults:
    def test_drain_completes_despite_injected_worker_kill(self):
        """Drain must finish every accepted job even when the plan SIGKILLs
        a worker mid-solve (the job rides its one requeue)."""
        from repro.service import ServiceConfig, ServiceThread
        from repro.service.client import ServiceClient

        with faults.plan_scope(faults.builtin_plan("worker-kill")):
            with ServiceThread(ServiceConfig(workers=1)) as thread:
                with ServiceClient(port=thread.port) as client:
                    accepted = [
                        client.kernel(name, wait=False)
                        for name in ("gemm", "atax", "mvt")
                    ]
                    thread.drain()
                    for record in accepted:
                        finished = client.job(record.id)
                        assert finished.state == "done", finished.error
                    health = client.healthz()
                    assert health.status == "draining"
                    assert health.degraded["requeued_jobs"] == 1
                    assert health.degraded["healthy"] is False

    def test_503_carries_retry_after_header(self):
        from repro.service import ServiceConfig, ServiceThread

        with ServiceThread(ServiceConfig(workers=1)) as thread:
            thread.drain()
            conn = http.client.HTTPConnection("127.0.0.1", thread.port)
            try:
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                response.read()
                assert response.status == 503
                assert response.getheader("Retry-After") is not None
            finally:
                conn.close()

    def test_deadline_maps_to_504_with_error_kind(self):
        from repro.service import ServiceConfig, ServiceThread
        from repro.service.client import ServiceClient, ServiceError

        with ServiceThread(ServiceConfig(workers=1)) as thread:
            with ServiceClient(port=thread.port) as client:
                with pytest.raises(ServiceError) as err:
                    client.kernel("gemm", deadline_seconds=1e-4)
                assert err.value.status == 504
                assert err.value.payload["error_kind"] == "deadline"
                # the fleet stays fully usable afterwards
                assert client.kernel("gemm").ok


class TestChaosSuite:
    def test_all_plans_never_silently_wrong(self, tmp_path):
        """The CI contract, in-tree: worker kills and store corruption
        recover to byte-identical payloads; engine failure degrades with
        an explicit flag.  Nothing is ever silently wrong."""
        # worker-kill fires on a worker's SECOND job: needs several kernels
        report = run_chaos(
            kernels=("gemm", "atax", "mvt"),
            plans=("worker-kill",),
            workers=1,
            out=tmp_path / "chaos.json",
        )
        assert report["ok"], report
        kill = report["plans"]["worker-kill"]
        assert {row["verdict"] for row in kill["results"].values()} == {
            "identical"
        }
        assert kill["resilience"]["requeued_jobs"] == 1
        assert (tmp_path / "chaos.json").exists()

        report = run_chaos(
            kernels=("atax",),
            plans=("store-corrupt", "engine-fail"),
            workers=1,
        )
        assert report["ok"], report
        plans = report["plans"]
        assert plans["store-corrupt"]["results"]["atax"]["verdict"] == "identical"
        assert plans["store-corrupt"]["resilience"]["store_quarantines"] >= 1
        assert plans["engine-fail"]["results"]["atax"]["verdict"] == "degraded"
        assert plans["engine-fail"]["degraded"]["bound_engine_errors"]


# -- property: one injected fault never yields a wrong-but-unflagged bound --

_BASELINE = None


def _baseline_bounds():
    global _BASELINE
    if _BASELINE is None:
        from repro.bounds import kernel_bounds

        _BASELINE = kernel_bounds("atax", s_values=[8])
    return _BASELINE


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    engine=st.sampled_from(["spectral", "kkt", "visit"]),
    occurrence=st.integers(min_value=1, max_value=3),
    error=st.sampled_from(["runtime", "memory", "value", "solver"]),
)
def test_single_fault_never_wrong_unflagged(engine, occurrence, error):
    """Any single injected bound-engine fault produces a payload that is
    either identical to fault-free or explicitly degraded — and a degraded
    certified bound is weaker-or-equal, never above the fault-free one."""
    from repro.bounds import kernel_bounds
    from repro.reporting.serialize import bounds_report

    baseline = _baseline_bounds()
    plan = FaultPlan(
        seed=1000 + occurrence,
        specs=[
            FaultSpec(
                site=f"bounds.engine.{engine}",
                action="raise",
                error=error,
                at=(occurrence,),
            )
        ],
    )
    with faults.plan_scope(plan):
        result = kernel_bounds("atax", s_values=[8])
    payload = strip_volatile(bounds_report(result))
    base_payload = strip_volatile(bounds_report(baseline))
    if payload == base_payload:
        return  # the occurrence never happened: the fault didn't land
    assert payload.get("degraded") is True, (
        "payload differs from fault-free but carries no degraded flag"
    )
    assert engine in payload["failed_engines"]
    for base_pt, pt in zip(baseline.points, result.points):
        assert pt.certified <= base_pt.certified
