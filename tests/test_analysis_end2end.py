"""End-to-end: source -> bound, cross-frontend consistency, validation."""

import pytest
import sympy as sp

from repro.analysis import analyze_kernel, analyze_source
from repro.kernels import get_kernel
from repro.pebbling.validate import validate_bound
from repro.symbolic.symbols import S_SYM

N = sp.Symbol("N", positive=True)
T = sp.Symbol("T", positive=True)


class TestAnalyzeSource:
    def test_gemm_python(self):
        result = analyze_source(
            "for i in range(N):\n"
            "    for j in range(N):\n"
            "        for k in range(N):\n"
            "            C[i, j] = C[i, j] + A[i, k] * B[k, j]\n"
        )
        assert sp.simplify(result.bound - 2 * N**3 / sp.sqrt(S_SYM)) == 0

    def test_lu_c(self):
        result = analyze_source(
            "for (int k = 0; k < N; k++)\n"
            "  for (int i = k + 1; i < N; i++)\n"
            "    for (int j = k + 1; j < N; j++)\n"
            "      A[i][j] = A[i][j] - A[i][k] * A[k][j];\n",
            language="c",
        )
        assert sp.simplify(result.bound - 2 * N**3 / (3 * sp.sqrt(S_SYM))) == 0

    def test_jacobi_pingpong_python(self):
        result = analyze_source(
            "for t in range(T):\n"
            "    for i in range(1, N - 1):\n"
            "        B[i] = (A[i - 1] + A[i] + A[i + 1]) / 3\n"
            "    for i in range(1, N - 1):\n"
            "        A[i] = (B[i - 1] + B[i] + B[i + 1]) / 3\n"
        )
        ratio = sp.simplify(result.bound / (N * T / S_SYM))
        assert ratio.is_number and float(ratio) > 0

    def test_source_matches_registered_kernel(self):
        """Frontend-parsed kernels agree with the hand-encoded IR."""
        for name in ("gemm", "floyd-warshall"):
            spec = get_kernel(name)
            from_source = analyze_source(spec.source, name=name)
            from_ir = analyze_kernel(name)
            assert sp.simplify(from_source.bound - from_ir.bound) == 0, name

    def test_unknown_language(self):
        with pytest.raises(ValueError):
            analyze_source("x", language="fortran")


class TestKernelResult:
    def test_ratio_and_shape_fields(self):
        result = analyze_kernel("gemm")
        assert result.ratio == 1
        assert result.shape_matches
        assert "gemm" in str(result)

    def test_program_bound_attached(self):
        result = analyze_kernel("atax")
        assert set(result.program_bound.per_array) == {"tmp", "y"}


class TestValidationSandwich:
    """lower bound <= optimal Q <= greedy upper bound on concrete instances."""

    @pytest.mark.parametrize(
        "name,params,s",
        [
            ("gemm", {"N": 2}, 4),
            ("gemm", {"N": 3}, 6),
            ("jacobi1d", {"N": 6, "T": 3}, 4),
            ("atax", {"M": 3, "N": 3}, 4),
            ("lu", {"N": 4}, 6),
            ("trisolv", {"N": 4}, 6),
        ],
    )
    def test_bound_sandwich(self, name, params, s):
        spec = get_kernel(name)
        report = validate_bound(spec.build(), params, s)
        assert report.sound, (
            f"{name}: lower {report.lower_bound} exceeds achievable "
            f"{report.optimal_cost or report.greedy_cost}"
        )

    def test_exact_optimum_when_small(self):
        report = validate_bound(
            get_kernel("gemm").build(), {"N": 2}, 4, exact_limit=16
        )
        assert report.optimal_cost is not None
        assert report.optimal_cost <= report.greedy_cost

    def test_gap_reported(self):
        report = validate_bound(get_kernel("gemm").build(), {"N": 3}, 8)
        assert report.gap >= 1.0
