"""Staged engine: canonical signatures, memoization cache, parallel solving."""

import json

import pytest
import sympy as sp

from repro.analysis import analyze_kernel
from repro.cli import main
from repro.engine import (
    Engine,
    SolveCache,
    SolveOutcome,
    analyze_many,
    canonicalize_problem,
    rename_solution,
    rename_text,
)
from repro.ir.array import Array
from repro.ir.program import Program
from repro.kernels.common import ref, stmt
from repro.opt.kkt import ChiSolution
from repro.sdg.bounds import io_footprint_floor, sdg_bound
from repro.sdg.merge import fuse_statements
from repro.symbolic.symbols import X_SYM

N = sp.Symbol("N", positive=True)
M = sp.Symbol("M", positive=True)

CACHE_KERNELS = ["gemm", "atax", "bicg", "mvt", "trisolv"]


def _gemm_program(vars3, name="p"):
    i, j, k = vars3
    return Program.make(
        name,
        [
            stmt(
                "mm",
                {i: "N", j: "N", k: "N"},
                ref("C", f"{i},{j}"),
                ref("C", f"{i},{j}"),
                ref("A", f"{i},{k}"),
                ref("B", f"{k},{j}"),
            )
        ],
    )


def _atax_program():
    first = stmt(
        "Ax", {"i": "M", "j": "N"},
        ref("tmp", "i"), ref("tmp", "i"), ref("A", "i,j"), ref("x", "j"),
    )
    second = stmt(
        "Aty", {"i": "M", "j": "N"},
        ref("y", "j"), ref("y", "j"), ref("A", "i,j"), ref("tmp", "i"),
    )
    return Program.make("atax", [first, second])


def _canonical(program, arrays=("C",)):
    fused = fuse_statements(program, tuple(arrays))
    return canonicalize_problem(fused.objective, fused.constraint, fused.extents)


class TestCanonicalSignature:
    def test_renamed_loop_vars_share_signature(self):
        """gemm written with i,j,k and with x,y,z is one cache entry."""
        a = _canonical(_gemm_program(("i", "j", "k")))
        b = _canonical(_gemm_program(("x", "y", "z")))
        assert a.signature == b.signature
        assert a.objective.expr == b.objective.expr
        assert a.constraint.expr == b.constraint.expr

    def test_permuted_statement_vars_share_signature(self):
        """Same structure declared with permuted variable roles still collides."""
        a = _canonical(_gemm_program(("i", "j", "k")))
        b = _canonical(_gemm_program(("k", "i", "j")))
        assert a.signature == b.signature

    def test_different_problems_differ(self):
        copy = Program.make(
            "cp", [stmt("cp", {"i": "N", "j": "N"}, ref("z", "i,j"), ref("W", "i,j"))]
        )
        a = _canonical(_gemm_program(("i", "j", "k")))
        b = _canonical(copy, arrays=("z",))
        assert a.signature != b.signature

    def test_solver_flags_change_signature(self):
        fused = fuse_statements(_gemm_program(("i", "j", "k")), ("C",))
        interior = canonicalize_problem(
            fused.objective, fused.constraint, fused.extents, allow_pinning=False
        )
        boundary = canonicalize_problem(
            fused.objective, fused.constraint, fused.extents, allow_pinning=True
        )
        assert interior.signature != boundary.signature

    def test_canonical_name_collision_keeps_extents_attached(self):
        """A user loop variable literally named 'c1' must not steal extents.

        Canonical names are c0, c1, ...; extents are attached after renaming,
        so an original variable called like a canonical name cannot cause a
        second remap that hands its extent to a different variable.
        """
        program = Program.make(
            "collide",
            [
                stmt(
                    "s",
                    {"c1": "N", "j": "M"},
                    ref("out", "c1"),
                    ref("out", "c1"),
                    ref("inp", "c1"),
                )
            ],
        )
        fused = fuse_statements(program, ("out",))
        canonical = canonicalize_problem(
            fused.objective, fused.constraint, fused.extents
        )
        # the uncapped variable's extent survives under its canonical name
        assert set(canonical.extents) <= set(canonical.rename.values())
        [(name, value)] = list(canonical.extents.items())
        assert canonical.inverse[name] == "j"
        assert value == M
        # and the whole analysis caps j at M instead of failing
        from repro.analysis import analyze_program

        bound = analyze_program(program, allow_pinning=True)
        assert bound.per_array  # solved (capped at M), not skipped
        assert bound.per_array["out"].intensity.chi_solution.capped == ("j",)

    def test_rename_is_bijective(self):
        canonical = _canonical(_gemm_program(("i", "j", "k")))
        assert sorted(canonical.rename) == ["i", "j", "k"]
        assert sorted(canonical.rename.values()) == ["c0", "c1", "c2"]
        assert {canonical.inverse[v]: v for v in canonical.inverse} == canonical.rename

    def test_rename_text_maps_canonical_tokens_back(self):
        inverse = {"c0": "i", "c1": "k", "c11": "t"}
        text = "optimum pins tiles ('c0', 'c11') to the boundary; capped b_c1"
        assert rename_text(text, inverse) == (
            "optimum pins tiles ('i', 't') to the boundary; capped b_k"
        )
        # unknown tokens are left alone
        assert rename_text("c99 stays", {"c0": "i"}) == "c99 stays"

    def test_solution_notes_use_original_variable_names(self):
        solution = ChiSolution(
            chi=X_SYM, notes=("capped ['c0'] at full extents",)
        )
        renamed = rename_solution(solution, {"c0": "i"})
        assert renamed.notes == ("capped ['i'] at full extents",)

    def test_rename_solution_maps_tiles_back(self):
        solution = ChiSolution(
            chi=X_SYM,
            tiles={"c0": sp.sqrt(X_SYM), "c1": sp.Integer(1)},
            capped=("c0",),
            pinned=("c1",),
        )
        renamed = rename_solution(solution, {"c0": "i", "c1": "j"})
        assert renamed.tiles == {"i": sp.sqrt(X_SYM), "j": sp.Integer(1)}
        assert renamed.capped == ("i",) and renamed.pinned == ("j",)
        assert renamed.chi == X_SYM


class TestCacheCorrectness:
    @pytest.mark.parametrize("name", CACHE_KERNELS)
    def test_warm_cache_bounds_identical(self, tmp_path, name):
        """Cold disk-cache run and warm rerun derive identical expressions."""
        cache_dir = tmp_path / "cache"
        cold = analyze_kernel(name, cache_dir=str(cache_dir))
        warm = analyze_kernel(name, cache_dir=str(cache_dir))
        assert cold.bound == warm.bound  # expression identity, not just equality
        assert cold.program_bound.bound_full == warm.program_bound.bound_full
        assert cold.program_bound.skipped == warm.program_bound.skipped
        warm_cache = warm.diagnostics.cache
        assert warm_cache.misses == 0
        assert warm_cache.disk_hits > 0

    def test_shared_engine_hits_across_renamed_programs(self):
        engine = Engine()
        first = engine.analyze(_gemm_program(("i", "j", "k")))
        second = engine.analyze(_gemm_program(("x", "y", "z"), name="q"))
        assert first.bound == second.bound
        assert second.diagnostics.cache.memory_hits > 0
        assert second.diagnostics.cache.misses == 0

    def test_negative_entries_keep_skips_identical(self):
        """Solver failures are cached too: warm runs skip the same subgraphs."""
        rr = stmt(
            "rrow", {"k": "N", "j": "N", "i": "M"},
            ref("R", "k,j"), ref("R", "k,j"), ref("Q", "i,k"), ref("Aa", "i,j"),
        )
        au = stmt(
            "aupd", {"k2": "N", "j2": "N", "i2": "M"},
            ref("Aa", "i2,j2"), ref("Aa", "i2,j2"), ref("Q", "i2,k2"), ref("R", "k2,j2"),
        )
        program = Program.make("gs", [rr, au])
        cache = SolveCache()
        cold = sdg_bound(program, cache=cache)
        warm = sdg_bound(program, cache=cache)
        assert cold.skipped == warm.skipped
        assert cold.notes == warm.notes
        assert cold.bound == warm.bound
        assert warm.diagnostics.cache.misses == 0

    def test_stale_negative_entry_resolved_by_newer_solver(self, tmp_path):
        store = SolveCache(tmp_path / "cache")
        store.put("sig", SolveOutcome(error="boundary optimum"))
        entry = json.loads((tmp_path / "cache" / "sig.json").read_text())
        entry["solver_revision"] = entry["solver_revision"] - 1
        (tmp_path / "cache" / "sig.json").write_text(json.dumps(entry))
        fresh = SolveCache(tmp_path / "cache")  # empty in-process tier
        assert fresh.get("sig") is None  # stale failure: treated as a miss

    def test_corrupt_disk_entry_falls_back_to_solve(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = analyze_kernel("gemm", cache_dir=str(cache_dir))
        for path in cache_dir.glob("*.json"):
            path.write_text("{not json")
        again = analyze_kernel("gemm", cache_dir=str(cache_dir))
        assert again.bound == cold.bound

    def test_disk_roundtrip_preserves_solution(self, tmp_path):
        fused = fuse_statements(_gemm_program(("i", "j", "k")), ("C",))
        canonical = canonicalize_problem(
            fused.objective, fused.constraint, fused.extents
        )
        from repro.engine.core import _solve_signature

        _, outcome = _solve_signature(
            (canonical.signature, canonical, False, "exact")
        )
        store = SolveCache(tmp_path / "cache")
        store.put(canonical.signature, outcome)
        fresh = SolveCache(tmp_path / "cache")  # new in-process tier
        loaded = fresh.get(canonical.signature)
        assert loaded is not None and loaded.ok
        assert sp.simplify(loaded.solution.chi - outcome.solution.chi) == 0
        assert loaded.solution.tiles == outcome.solution.tiles


class TestParallelExecution:
    def test_subgraph_jobs_match_serial(self):
        program = _atax_program()
        serial = sdg_bound(program)
        parallel = sdg_bound(program, jobs=2)
        assert serial.bound == parallel.bound
        assert serial.bound_full == parallel.bound_full
        assert serial.skipped == parallel.skipped
        assert {a: s.rho for a, s in serial.per_array.items()} == {
            a: s.rho for a, s in parallel.per_array.items()
        }

    def test_analyze_many_rejects_engine_plus_cache_dir(self, tmp_path):
        with pytest.raises(ValueError):
            analyze_many(["gemm"], engine=Engine(), cache_dir=str(tmp_path))

    def test_analyze_many_jobs_match_serial(self, tmp_path):
        names = ["gemm", "atax"]
        serial = analyze_many(names)
        parallel = analyze_many(names, jobs=2, cache_dir=str(tmp_path / "cache"))
        assert [r.name for r in parallel] == names
        for a, b in zip(serial, parallel):
            assert a.bound == b.bound
            assert a.ratio == b.ratio


class TestStageDiagnostics:
    def test_stage_sequence_and_counts(self):
        result = sdg_bound(_atax_program())
        diagnostics = result.diagnostics
        assert [s.name for s in diagnostics.stages] == [
            "build-sdg", "enumerate", "fuse", "solve", "combine",
        ]
        assert diagnostics.stage("enumerate").count("subgraphs") == 3
        assert diagnostics.stage("solve").count("problems") == 3
        assert diagnostics.total_seconds > 0
        payload = diagnostics.as_dict()  # must be JSON-serializable
        json.dumps(payload)
        assert payload["stages"][0]["name"] == "build-sdg"


class TestIoFloorEdgeCases:
    def test_no_declared_element_counts_gives_zero_floor(self):
        s = stmt("s", {"i": "N"}, ref("out", "i"), ref("inp", "i"))
        program = Program.make("p", [s])  # no Array declarations at all
        assert io_footprint_floor(program) == 0

    def test_computed_and_read_array_excluded_even_when_declared(self):
        s1 = stmt("s1", {"i": "N"}, ref("mid", "i"), ref("inp", "i"))
        s2 = stmt("s2", {"i2": "N"}, ref("out", "i2"), ref("mid", "i2"))
        program = Program.make(
            "p",
            [s1, s2],
            [Array("inp", 1, N), Array("mid", 1, N), Array("out", 1, N)],
        )
        # inp (input) + out (dead output) count; mid (computed *and* read) not.
        assert sp.simplify(io_footprint_floor(program) - 2 * N) == 0

    def test_partially_declared_inputs_still_lower_bound(self):
        s = stmt("s", {"i": "N"}, ref("out", "i"), ref("a", "i"), ref("b", "i"))
        program = Program.make("p", [s], [Array("a", 1, N)])
        assert sp.simplify(io_footprint_floor(program) - N) == 0


class TestCLIPlumbing:
    def test_analyze_flags_reach_engine(self, tmp_path, capsys):
        path = tmp_path / "atax.py"
        path.write_text(
            "for i in range(M):\n"
            "    for j in range(N):\n"
            "        tmp[i] += A[i, j] * x[j]\n"
            "for i in range(M):\n"
            "    for j in range(N):\n"
            "        y[j] += A[i, j] * tmp[i]\n"
        )
        assert main(["analyze", str(path), "--json", "--max-subgraph-size", "1"]) == 0
        capped = json.loads(capsys.readouterr().out)
        assert main(["analyze", str(path), "--json"]) == 0
        full = json.loads(capsys.readouterr().out)
        # size-1 enumeration cannot discover the fused tmp/y pair
        assert all(len(v["subgraph"]) == 1 for v in capped["per_array"].values())
        assert any(len(v["subgraph"]) == 2 for v in full["per_array"].values())

    def test_kernel_json_report(self, capsys, tmp_path):
        code = main([
            "kernel", "gemm", "--json", "--cache-dir", str(tmp_path / "c"),
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ours"] == "2*N**3/sqrt(S)"
        assert payload["ratio"] == "1" and payload["shape_matches"] is True
        stage_names = [s["name"] for s in payload["diagnostics"]["stages"]]
        assert stage_names == ["build-sdg", "enumerate", "fuse", "solve", "combine"]


class TestLRUCap:
    """Bounded memory tier: least-recently-used eviction, counted in stats."""

    def _outcome(self, tag):
        return SolveOutcome(error=f"marker {tag}")

    def test_unbounded_by_default(self):
        cache = SolveCache()
        for index in range(100):
            cache.put(f"sig{index}", self._outcome(index))
        assert len(cache) == 100
        assert cache.stats.evictions == 0

    def test_evicts_least_recently_used(self):
        cache = SolveCache(max_memory_entries=2)
        cache.put("a", self._outcome("a"))
        cache.put("b", self._outcome("b"))
        assert cache.get("a") is not None  # refresh a: b is now LRU
        cache.put("c", self._outcome("c"))
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.stats.evictions == 1

    def test_eviction_falls_back_to_disk_tier(self, tmp_path):
        cache = SolveCache(tmp_path / "c", max_memory_entries=1)
        cache.put("a", self._outcome("a"))
        cache.put("b", self._outcome("b"))  # evicts a from memory, not disk
        assert cache.stats.evictions == 1
        outcome = cache.get("a")
        assert outcome is not None and outcome.error == "marker a"
        assert cache.stats.disk_hits == 1

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            SolveCache(max_memory_entries=0)

    def test_engine_runs_with_tiny_cache(self):
        engine = Engine(cache=SolveCache(max_memory_entries=1))
        result = analyze_kernel("gemm", engine=engine)
        assert str(result.bound) == "2*N**3/sqrt(S)"

    def test_stats_snapshot_is_a_copy(self):
        cache = SolveCache()
        snapshot = cache.stats_snapshot()
        cache.put("a", self._outcome("a"))
        assert snapshot.stores == 0
        assert cache.stats.stores == 1
