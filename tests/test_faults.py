"""The fault-injection harness itself plus each subsystem's resilience.

Covers: plan parsing/determinism/disarm semantics, deadline propagation,
store boot quarantine + busy-degradation, shared-memory attach faults and
the orphan sweep, native-replay fallback status, degraded bound payloads,
and the client's retry policy plumbing.  End-to-end chaos runs (daemon +
forked fleet under a plan) live in test_chaos.py.
"""

import json
import multiprocessing
import os
import time

import pytest

from repro import faults
from repro.faults.plan import ERROR_KINDS, FaultPlan, FaultSpec


def _plan(*specs, seed=7) -> FaultPlan:
    return FaultPlan(seed=seed, specs=[FaultSpec(**spec) for spec in specs])


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(site="", action="raise")
        with pytest.raises(ValueError):
            FaultSpec(site="x", action="explode")
        with pytest.raises(ValueError):
            FaultSpec(site="x", action="raise", error="no-such-kind")
        with pytest.raises(ValueError):
            FaultSpec(site="x", action="raise", p=1.5)
        with pytest.raises(ValueError):
            FaultSpec(site="x", action="raise", at=(0,))
        with pytest.raises(ValueError):
            FaultSpec(site="x", action="raise", times=0)

    def test_roundtrip(self):
        spec = FaultSpec(site="store.get", action="raise", error="sqlite-busy",
                        p=0.25, at=(3, 5), times=2)
        assert FaultSpec.from_dict(spec.as_dict()) == spec

    def test_every_error_kind_instantiates(self):
        for kind in ERROR_KINDS:
            spec = FaultSpec(site="x", action="raise", error=kind, at=(1,))
            assert isinstance(spec.exception(), Exception)


class TestFaultPlan:
    def test_load_inline_builtin_and_file(self, tmp_path):
        inline = FaultPlan.load('{"seed": 3, "faults": []}')
        assert inline.seed == 3
        assert FaultPlan.load("worker-kill").specs  # built-in name
        path = tmp_path / "plan.json"
        path.write_text(json.dumps({"seed": 9, "faults": []}))
        assert FaultPlan.load(str(path)).seed == 9
        with pytest.raises(ValueError):
            FaultPlan.load("no-such-plan")

    def test_duplicate_site_rejected(self):
        with pytest.raises(ValueError):
            _plan({"site": "a", "action": "raise", "at": (1,)},
                  {"site": "a", "action": "raise", "at": (2,)})

    def test_at_schedule_fires_exact_occurrences(self):
        plan = _plan({"site": "s", "action": "raise", "at": (2, 4)})
        fired = [plan.check("s") is not None for _ in range(6)]
        assert fired == [False, True, False, True, False, False]

    def test_probability_is_deterministic_per_seed(self):
        def pattern(plan):
            return [plan.check("s") is not None for _ in range(200)]

        spec = {"site": "s", "action": "raise", "p": 0.3}
        a, b = _plan(spec, seed=11), _plan(spec, seed=11)
        assert pattern(a) == pattern(b)
        assert pattern(_plan(spec, seed=12)) != pattern(a)

    def test_at_hits_do_not_shift_probability_draws(self):
        base = _plan({"site": "s", "action": "raise", "p": 0.3}, seed=11)
        extra = _plan(
            {"site": "s", "action": "raise", "p": 0.3, "at": (50,)}, seed=11
        )
        fired_base = [base.check("s") is not None for _ in range(100)]
        fired_extra = [extra.check("s") is not None for _ in range(100)]
        diffs = [i for i, (x, y) in enumerate(zip(fired_base, fired_extra))
                 if x != y]
        # the only legal divergence is the forced occurrence itself
        assert diffs in ([], [49])

    def test_times_caps_total_fires(self):
        plan = _plan({"site": "s", "action": "raise", "p": 1.0, "times": 3})
        fired = sum(plan.check("s") is not None for _ in range(10))
        assert fired == 3

    def test_disarm_silences_site_but_counts_occurrences(self):
        plan = _plan({"site": "s", "action": "raise", "p": 1.0})
        plan.disarm("s")
        assert plan.check("s") is None
        assert plan.snapshot()["s"]["occurrences"] == 1


class TestRuntime:
    def test_inject_noop_without_plan(self):
        assert faults.active() is False
        faults.inject("anything")  # must not raise

    def test_plan_scope_restores(self):
        plan = _plan({"site": "s", "action": "raise", "at": (1,)})
        with faults.plan_scope(plan):
            assert faults.active()
            with pytest.raises(faults.FaultInjected):
                faults.inject("s")
        assert not faults.active()

    def test_typed_errors_raise_their_class(self):
        import sqlite3

        plan = _plan(
            {"site": "busy", "action": "raise", "error": "sqlite-busy", "p": 1.0},
            {"site": "eof", "action": "raise", "error": "eof", "p": 1.0},
        )
        with faults.plan_scope(plan):
            with pytest.raises(sqlite3.OperationalError):
                faults.inject("busy")
            with pytest.raises(EOFError):
                faults.inject("eof")

    def test_triggered_and_corrupt_file(self, tmp_path):
        target = tmp_path / "data.bin"
        target.write_bytes(b"A" * 100)
        plan = _plan(
            {"site": "q", "action": "raise", "at": (1,)},
            {"site": "c", "action": "corrupt", "at": (1,)},
        )
        with faults.plan_scope(plan):
            assert faults.triggered("q") is True
            assert faults.triggered("q") is False
            assert faults.corrupt_file("c", target) is True
        assert target.read_bytes() != b"A" * 100

    def test_snapshot_shape(self):
        plan = _plan({"site": "s", "action": "raise", "at": (1,)})
        with faults.plan_scope(plan):
            try:
                faults.inject("s")
            except faults.FaultInjected:
                pass
            snap = faults.snapshot()
        assert snap["active"] is True
        assert snap["sites"]["s"] == {"occurrences": 1, "fired": 1}
        assert faults.snapshot() == {"active": False}


class TestDeadline:
    def test_remaining_and_expired(self):
        deadline = faults.Deadline.after(60.0)
        assert not deadline.expired
        assert 0 < deadline.remaining() <= 60.0
        past = faults.Deadline(at=time.time() - 1.0)
        assert past.expired and past.remaining() == 0.0

    def test_check_deadline_is_noop_without_scope(self):
        faults.check_deadline("anywhere")

    def test_scope_raises_with_stage(self):
        with faults.deadline_scope(faults.Deadline(at=time.time() - 0.5)):
            with pytest.raises(faults.DeadlineExceeded) as err:
                faults.check_deadline("solve")
        assert err.value.stage == "solve"
        assert "solve" in str(err.value)

    def test_scopes_nest_and_restore(self):
        outer = faults.Deadline.after(60.0)
        inner = faults.Deadline(at=time.time() - 1.0)
        with faults.deadline_scope(outer):
            assert faults.current_deadline() is outer
            with faults.deadline_scope(inner):
                with pytest.raises(faults.DeadlineExceeded):
                    faults.check_deadline("inner")
            assert faults.current_deadline() is outer
            faults.check_deadline("outer")  # far away: no raise
        assert faults.current_deadline() is None

    def test_deadline_is_picklable(self):
        import pickle

        deadline = faults.Deadline.after(5.0)
        assert pickle.loads(pickle.dumps(deadline)) == deadline


class TestStoreResilience:
    def test_boot_quarantines_garbled_db(self, tmp_path):
        from repro.engine.cache import SolveOutcome
        from repro.engine.store import SharedSolveStore

        path = tmp_path / "solves.sqlite"
        store = SharedSolveStore(path)
        store.put("sig", SolveOutcome(error="seed"))
        store.close()
        path.write_bytes(b"\x00not a database\x00")
        reopened = SharedSolveStore(path)
        assert reopened.last_quarantine is not None
        assert reopened.stats.quarantines == 1
        assert reopened.get("sig") is None  # fresh schema
        reopened.put("sig2", SolveOutcome(error="fresh"))
        assert reopened.get("sig2") is not None
        reopened.close()
        quarantined = list(tmp_path.glob("solves.sqlite.corrupt-*"))
        assert len(quarantined) == 1

    def test_injected_corruption_at_open(self, tmp_path):
        from repro.engine.store import SharedSolveStore

        path = tmp_path / "solves.sqlite"
        SharedSolveStore(path).close()  # file now exists
        with faults.plan_scope(faults.builtin_plan("store-corrupt")):
            store = SharedSolveStore(path)
        assert store.stats.quarantines == 1
        store.close()

    def test_busy_store_degrades_cache_not_correctness(self, tmp_path):
        from repro.engine.cache import SolveCache, SolveOutcome
        from repro.engine.store import SharedSolveStore

        store = SharedSolveStore(tmp_path / "solves.sqlite")
        cache = SolveCache(store=store)
        with faults.plan_scope(faults.builtin_plan("store-busy")):
            for i in range(30):
                cache.put(f"k{i}", SolveOutcome(error=f"e{i}"))
                cache._memory.clear()  # force the store tier on reads
                got = cache.get(f"k{i}")
                # a busy store may lose the hit, never return a wrong one
                assert got is None or got.error == f"e{i}"
        assert store.stats.errors > 0
        store.close()


class TestSharedMemoryResilience:
    def _ref(self, name="reprosoap-1-deadbeef0000"):
        from repro.schedule.shared_streams import SharedStreamRef

        return SharedStreamRef(
            name=name, signature="sig", n_positions=0, n_ids=0,
            chunk_positions=None, fields=(),
        )

    def test_attach_missing_segment_raises_typed(self):
        from repro.schedule import shared_streams

        with pytest.raises(FileNotFoundError):
            shared_streams.attach(self._ref())

    def test_attach_or_rebuild_falls_back_and_records(self):
        from repro.schedule import shared_streams

        before = shared_streams.attach_fallbacks()
        sentinel = object()
        got = shared_streams.attach_or_rebuild(
            self._ref("reprosoap-1-deadbeef0001"), lambda: sentinel
        )
        assert got is sentinel
        assert shared_streams.attach_fallbacks() == before + 1
        records = shared_streams.error_records()
        assert any(
            r["op"] == "attach" and r["error_class"] == "FileNotFoundError"
            for r in records
        )
        shared_streams.detach_all()

    def test_injected_attach_fault(self):
        from repro.schedule import shared_streams

        plan = _plan({"site": "shared.attach", "action": "raise",
                      "error": "missing-file", "at": (1,)})
        with faults.plan_scope(plan):
            with pytest.raises(FileNotFoundError):
                shared_streams.attach(self._ref("reprosoap-1-deadbeef0002"))

    def test_sweep_orphans_reclaims_dead_pid_segment(self):
        from multiprocessing import shared_memory

        from repro.schedule import shared_streams

        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=lambda: None)
        proc.start()
        proc.join()
        dead_pid = proc.pid
        assert not shared_streams._pid_alive(dead_pid)
        name = f"reprosoap-{dead_pid}-{'ab' * 6}"
        seg = shared_memory.SharedMemory(create=True, size=64, name=name)
        shared_streams._untrack(seg)
        seg.close()
        assert shared_streams.sweep_orphans() >= 1
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_sweep_ignores_live_and_foreign_segments(self):
        from multiprocessing import shared_memory

        from repro.schedule import shared_streams

        name = f"reprosoap-{os.getpid()}-{'cd' * 6}"
        seg = shared_memory.SharedMemory(create=True, size=64, name=name)
        shared_streams._untrack(seg)
        try:
            shared_streams.sweep_orphans()
            probe = shared_memory.SharedMemory(name=name)  # still alive
            shared_streams._untrack(probe)
            probe.close()
        finally:
            seg.close()
            seg.unlink()


class TestNativeStatus:
    def test_status_shape(self):
        from repro.schedule._native import native_replay_lib, native_status

        native_replay_lib()
        status = native_status()
        assert "available" in status
        if status["available"] is False:
            assert "error_class" in status


class TestDegradedBounds:
    def test_engine_failure_flags_payload(self):
        from repro.bounds import kernel_bounds

        baseline = kernel_bounds("atax", s_values=[8])
        assert not baseline.degraded
        assert "degraded" not in baseline.as_dict()
        with faults.plan_scope(faults.builtin_plan("engine-fail")):
            degraded = kernel_bounds("atax", s_values=[8])
        assert degraded.degraded
        assert "spectral" in degraded.failed_engines
        payload = degraded.as_dict()
        assert payload["degraded"] is True
        assert payload["failed_engines"] == list(degraded.failed_engines)
        spectral_rows = [
            row
            for point in payload["points"]
            for row in point["engines"]
            if row["engine"] == "spectral"
        ]
        assert spectral_rows and all(
            row["error_class"] == "FaultInjected" for row in spectral_rows
        )
        # degraded is weaker-or-equal, never wrong: the certified max from
        # the survivors cannot exceed the fault-free certified max
        for base_pt, deg_pt in zip(baseline.points, degraded.points):
            assert deg_pt.certified <= base_pt.certified


class TestClientRetryPolicy:
    def test_retry_after_header_is_honoured_and_capped(self):
        from repro.service.client import MAX_RETRY_AFTER_SECONDS, ServiceClient

        client = ServiceClient(backoff=0.25)
        assert client._retry_after({"retry-after": "2"}, attempt=0) == 2.0
        assert (
            client._retry_after({"retry-after": "9999"}, attempt=0)
            == MAX_RETRY_AFTER_SECONDS
        )
        # malformed or absent header: exponential fallback
        assert client._retry_after({"retry-after": "soon"}, attempt=1) == 0.5
        assert client._retry_after({}, attempt=2) == 1.0

    def test_idempotent_retry_defaults(self):
        from repro.service.client import (
            DEFAULT_IDEMPOTENT_RETRIES,
            ServiceClient,
        )

        client = ServiceClient()
        assert client._retries_for(True) == DEFAULT_IDEMPOTENT_RETRIES
        assert client._retries_for(False) == 0
        pinned = ServiceClient(retries=5)
        assert pinned._retries_for(True) == 5
        assert pinned._retries_for(False) == 5

    def test_budget_validation(self):
        from repro.service.client import ServiceClient

        with pytest.raises(ValueError):
            ServiceClient(retry_budget_seconds=0)
        with pytest.raises(ValueError):
            ServiceClient(retries=-1)
