"""SDG construction and subgraph enumeration (paper Figure 2 / Example 7-8)."""

import networkx as nx

from repro.ir.program import Program
from repro.kernels.common import ref, stmt
from repro.sdg.graph import SDG
from repro.sdg.subgraphs import enumerate_subgraphs


def figure2_program() -> Program:
    """The paper's running example: C = outer-ish(A,B); E += C @ D."""
    st1 = stmt(
        "St1",
        {"i": "N", "j": "M"},
        ref("C", "i,j"),
        ref("A", "i", "i+1"),
        ref("B", "j", "j+1"),
    )
    st2 = stmt(
        "St2",
        {"i2": "N", "j2": "K", "k2": "M"},
        ref("E", "i2,j2"),
        ref("E", "i2,j2"),
        ref("C", "i2,k2"),
        ref("D", "k2,j2"),
    )
    return Program.make("figure2", [st1, st2])


class TestSDG:
    def test_vertices_are_arrays(self):
        sdg = SDG.from_program(figure2_program())
        assert set(sdg.graph.nodes) == {"A", "B", "C", "D", "E"}

    def test_edges_match_example7(self):
        sdg = SDG.from_program(figure2_program())
        expected = {("A", "C"), ("B", "C"), ("C", "E"), ("D", "E"), ("E", "E")}
        assert set(sdg.edges()) == expected

    def test_self_edge_for_update(self):
        sdg = SDG.from_program(figure2_program())
        assert sdg.graph.has_edge("E", "E")

    def test_inputs_are_indegree_zero(self):
        sdg = SDG.from_program(figure2_program())
        assert set(sdg.inputs) == {"A", "B", "D"}

    def test_computed(self):
        sdg = SDG.from_program(figure2_program())
        assert set(sdg.computed) == {"C", "E"}

    def test_subgraph_inputs_example8(self):
        sdg = SDG.from_program(figure2_program())
        assert set(sdg.subgraph_inputs(("C",))) == {"A", "B"}
        # H3 = {C, E}: In(St_H3) = {A, B, D} (C internal, E's self-edge kept
        # through Corollary 1, not through In()).
        assert set(sdg.subgraph_inputs(("C", "E"))) == {"A", "B", "D"}

    def test_sharing_graph_connects_producer_consumer(self):
        sdg = SDG.from_program(figure2_program())
        sharing = sdg.sharing_graph()
        assert sharing.has_edge("C", "E")

    def test_edge_annotated_with_statements(self):
        sdg = SDG.from_program(figure2_program())
        statements = sdg.graph["C"]["E"]["statements"]
        assert [s.name for s in statements] == ["St2"]


class TestSubgraphEnumeration:
    def test_enumerates_connected_subsets_exactly_once(self):
        g = nx.Graph([("a", "b"), ("b", "c"), ("c", "d"), ("b", "d")])
        subsets = list(enumerate_subgraphs(g))
        assert len(subsets) == len(set(subsets))
        for subset in subsets:
            assert nx.is_connected(g.subgraph(subset))

    def test_counts_on_path_graph(self):
        g = nx.path_graph(4)  # connected subsets of a path: n(n+1)/2 = 10
        assert len(list(enumerate_subgraphs(g))) == 10

    def test_counts_on_complete_graph(self):
        g = nx.complete_graph(4)  # all non-empty subsets: 15
        assert len(list(enumerate_subgraphs(g))) == 15

    def test_max_size_respected(self):
        g = nx.complete_graph(5)
        subsets = list(enumerate_subgraphs(g, max_size=2))
        assert max(len(s) for s in subsets) == 2

    def test_isolated_vertices_enumerated(self):
        g = nx.Graph()
        g.add_nodes_from(["x", "y"])
        assert sorted(enumerate_subgraphs(g)) == [("x",), ("y",)]
