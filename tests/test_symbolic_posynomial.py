"""Unit tests for Monomial/Posynomial."""

import sympy as sp
import pytest

from repro.symbolic.posynomial import Monomial, Posynomial
from repro.symbolic.symbols import tile

bi, bj, bk = tile("i"), tile("j"), tile("k")
N = sp.Symbol("N", positive=True)


class TestMonomial:
    def test_make_drops_zero_exponents(self):
        m = Monomial.make(2, {bi: 1, bj: 0})
        assert m.variables() == (bi,)

    def test_expr_round_trip(self):
        m = Monomial.make(3, {bi: 2, bj: sp.Rational(1, 2)})
        assert sp.simplify(m.expr - 3 * bi**2 * sp.sqrt(bj)) == 0

    def test_degree(self):
        m = Monomial.make(1, {bi: 2, bj: sp.Rational(1, 2)})
        assert m.degree == sp.Rational(5, 2)

    def test_exponent_of_absent_variable_is_zero(self):
        m = Monomial.make(1, {bi: 1})
        assert m.exponent(bj) == 0

    def test_multiplication_merges_powers(self):
        a = Monomial.make(2, {bi: 1})
        b = Monomial.make(3, {bi: 1, bj: 1})
        c = a * b
        assert c.exponent(bi) == 2
        assert c.exponent(bj) == 1
        assert sp.simplify(c.coeff - 6) == 0

    def test_symbolic_coefficient(self):
        m = Monomial.make(N, {bi: 1})
        assert m.expr == N * bi

    def test_powers_sorted_by_name(self):
        m = Monomial.make(1, {bk: 1, bi: 1})
        assert [v.name for v, _ in m.powers] == ["b_i", "b_k"]

    def test_scaled(self):
        m = Monomial.make(2, {bi: 1}).scaled(3)
        assert sp.simplify(m.coeff - 6) == 0

    def test_subs(self):
        m = Monomial.make(2, {bi: 2})
        assert m.subs({bi: 3}) == 18


class TestPosynomial:
    def test_merges_equal_power_terms(self):
        p = Posynomial([Monomial.make(1, {bi: 1}), Monomial.make(2, {bi: 1})])
        assert len(p) == 1
        assert sp.simplify(p.terms[0].coeff - 3) == 0

    def test_drops_zero_coefficient(self):
        p = Posynomial([Monomial.make(1, {bi: 1}), Monomial.make(-1, {bi: 1})])
        assert len(p) == 0

    def test_from_expr_simple(self):
        p = Posynomial.from_expr(2 * bi * bj + bk, [bi, bj, bk])
        assert len(p) == 2
        assert sp.simplify(p.expr - (2 * bi * bj + bk)) == 0

    def test_from_expr_with_parameters(self):
        p = Posynomial.from_expr(N * bi + 3, [bi])
        coeffs = {t.coeff for t in p.terms}
        assert N in coeffs and sp.Integer(3) in coeffs

    def test_from_expr_expands_products(self):
        p = Posynomial.from_expr((bi + 1) * (bj + 2), [bi, bj])
        assert len(p) == 4

    def test_from_expr_rejects_non_monomial(self):
        with pytest.raises(ValueError):
            Posynomial.from_expr(sp.sqrt(bi + bj), [bi, bj])

    def test_leading_keeps_top_degree(self):
        p = Posynomial.from_expr(bi * bj + bi + bj, [bi, bj]).leading()
        assert len(p) == 1
        assert p.terms[0].degree == 2

    def test_leading_keeps_ties(self):
        p = Posynomial.from_expr(bi * bj + bj * bk, [bi, bj, bk]).leading()
        assert len(p) == 2

    def test_addition(self):
        a = Posynomial.from_expr(bi, [bi])
        b = Posynomial.from_expr(bj, [bj])
        assert len(a + b) == 2

    def test_variables_ordered(self):
        p = Posynomial.from_expr(bk + bi, [bi, bk])
        assert set(p.variables()) == {bi, bk}

    def test_is_positive(self):
        assert Posynomial.from_expr(2 * bi + bj, [bi, bj]).is_positive()
        assert not Posynomial.from_expr(bi - bj, [bi, bj]).is_positive()

    def test_degree_at_most(self):
        p = Posynomial.from_expr(bi * bj + bi + 1, [bi, bj])
        assert len(p.degree_at_most(1)) == 2
