"""Concrete-CDAG bound engines: registry, combine, soundness, service."""

import json
import math

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.bounds import (
    available_bound_engines,
    evaluate_bounds,
    get_bound_engine,
    kernel_bounds,
)
from repro.bounds.registry import BoundProblem
from repro.bounds.structure import graph_facts, io_floor
from repro.cdag.cache import cached_cdag, cdag_signature, clear_cdag_cache
from repro.cli import main
from repro.pebbling.optimal import optimal_pebbling_cost
from repro.schedule.simulator import simulate_io
from repro.schedule.stream import stream_from_graph
from repro.util.errors import PebblingError


def chain(n: int) -> nx.DiGraph:
    return nx.DiGraph([(i, i + 1) for i in range(n)])


def diamond() -> nx.DiGraph:
    return nx.DiGraph([(0, 1), (0, 2), (1, 3), (2, 3)])


class TestStructure:
    def test_floor_counts_live_inputs_and_computed_sinks(self):
        # diamond: one input feeding work, one computed sink
        assert io_floor(diamond()) == 2
        # chain(3): 0 is a live input, 3 the only computed sink
        assert io_floor(chain(3)) == 2

    def test_isolated_vertices_do_not_count(self):
        g = diamond()
        g.add_node("lonely")  # in=0, out=0: neither loaded nor stored
        assert io_floor(g) == 2

    def test_graph_facts_shape(self):
        facts = graph_facts(diamond())
        assert facts.n_vertices == 4
        assert facts.floor == 2
        assert len(facts.computed) == 3
        assert facts.n_levels == 2  # computed levels: middle pair, sink
        # facts are cached per graph object
        g = diamond()
        assert graph_facts(g) is graph_facts(g)


class TestRegistry:
    def test_builtin_engines_in_registration_order(self):
        assert list(available_bound_engines()) == ["kkt", "spectral", "visit"]

    def test_unknown_engine_names_the_alternatives(self):
        with pytest.raises(KeyError, match="available: kkt, spectral, visit"):
            get_bound_engine("bogus")

    def test_engine_failure_is_a_result_not_an_exception(self):
        # a malformed symbolic bound makes the kkt evaluation blow up;
        # the registry converts that into an error-carrying result
        problem = BoundProblem(s=8, symbolic_bound=object())
        result = get_bound_engine("kkt").evaluate(problem)
        assert not result.ok
        assert result.error
        assert math.isnan(result.value)

    def test_applicability_gating(self):
        graph_only = BoundProblem(s=8, graph=diamond())
        assert not get_bound_engine("kkt").applicable(graph_only)
        assert get_bound_engine("visit").applicable(graph_only)
        assert get_bound_engine("spectral").applicable(graph_only)


class TestCombine:
    def test_graph_only_skips_kkt(self):
        combined = evaluate_bounds(s=4, graph=diamond())
        assert set(combined.engine_values()) == {"spectral", "visit"}

    def test_certified_is_the_max_and_ties_go_to_registration_order(self):
        combined = evaluate_bounds(s=4, graph=diamond())
        values = combined.engine_values()
        assert combined.certified == max(values.values())
        # on a 4-vertex graph both engines sit on the same floor, so the
        # earlier-registered spectral engine keeps the win
        assert values["spectral"] == values["visit"]
        assert combined.winning_engine == "spectral"

    def test_engine_selection(self):
        combined = evaluate_bounds(s=4, graph=diamond(), engines=["visit"])
        assert list(combined.engine_values()) == ["visit"]
        assert combined.winning_engine == "visit"

    def test_as_dict_shape(self):
        payload = evaluate_bounds(s=4, graph=diamond()).as_dict()
        assert payload["s"] == 4
        assert {"certified", "winning_engine", "disagreement", "engines"} <= set(
            payload
        )
        for entry in payload["engines"]:
            assert {"engine", "value", "model", "notes"} <= set(entry)


class TestVisitEngine:
    def test_never_below_floor(self):
        g = chain(6)
        result = get_bound_engine("visit").evaluate(BoundProblem(s=3, graph=g))
        assert result.ok
        assert result.value >= io_floor(g)

    def test_sound_against_exact_pebbling_on_a_grid(self):
        g = nx.DiGraph()
        for i in range(3):
            for j in range(3):
                if i + 1 < 3:
                    g.add_edge((i, j), (i + 1, j))
                if j + 1 < 3:
                    g.add_edge((i, j), (i, j + 1))
        for s in (3, 4, 6):
            value = get_bound_engine("visit").evaluate(
                BoundProblem(s=s, graph=g)
            ).value
            assert value <= optimal_pebbling_cost(g, s)


class TestSpectralEngine:
    def test_small_graphs_fall_back_to_the_floor(self):
        g = diamond()
        result = get_bound_engine("spectral").evaluate(
            BoundProblem(s=4, graph=g)
        )
        assert result.ok
        assert result.value == io_floor(g)
        assert any("floor" in note for note in result.notes)

    def test_large_graph_is_finite_and_at_least_the_floor(self):
        cdag = cached_cdag("cholesky", {"N": 8})
        result = get_bound_engine("spectral").evaluate(
            BoundProblem(s=8, graph=cdag.graph)
        )
        assert result.ok
        assert math.isfinite(result.value)
        assert result.value >= io_floor(cdag.graph)


class TestKernelBounds:
    def test_gemm_sweep(self):
        kb = kernel_bounds("gemm", s_values=(8, 18))
        assert kb.kernel == "gemm"
        assert kb.s_values == (8, 18)
        assert len(kb.points) == 2
        for point in kb.points:
            values = [r.value for r in point.results if r.ok]
            assert point.certified == max(values)
        assert kb.winning_engine in available_bound_engines()
        assert 0.0 <= kb.max_disagreement <= 1.0

    def test_report_payload(self):
        from repro.reporting.serialize import bounds_report

        payload = bounds_report(kernel_bounds("gemm", s_values=(8,)))
        assert payload["report"] == "bounds"
        assert payload["kernel"] == "gemm"
        assert payload["points"][0]["s"] == 8
        json.dumps(payload)  # fully serializable

    def test_too_large_instance_is_an_error(self):
        with pytest.raises(ValueError, match="instance too large"):
            kernel_bounds("gemm", s_values=(8,), max_vertices=1)


class TestCdagCache:
    def test_shared_instance_and_signature(self):
        clear_cdag_cache()
        first = cached_cdag("gemm", {"N": 4})
        assert cached_cdag("gemm", {"N": 4}) is first
        assert cdag_signature("gemm", {"N": 4}) == cdag_signature(
            "gemm", {"N": True and 4}
        )
        clear_cdag_cache()
        assert cached_cdag("gemm", {"N": 4}) is not first


@st.composite
def small_dags(draw):
    """Random DAGs on <= 7 vertices (edges only ever point forward)."""
    n = draw(st.integers(min_value=2, max_value=7))
    g = nx.DiGraph()
    g.add_nodes_from(range(n))
    for j in range(1, n):
        for i in range(j):
            if draw(st.booleans()):
                g.add_edge(i, j)
    return g


class TestDifferentialSoundness:
    """Satellite guarantee: no registered engine ever exceeds the exact
    optimal pebbling cost, nor the simulated replay I/O, on any graph."""

    @given(small_dags(), st.integers(min_value=0, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_engines_below_exact_and_replay(self, graph, s_extra):
        max_in = max((graph.in_degree(v) for v in graph.nodes), default=0)
        s = max_in + 2 + s_extra
        combined = evaluate_bounds(s=s, graph=graph)
        computed = [v for v in graph.nodes if graph.in_degree(v) > 0]
        replay = (
            simulate_io(stream_from_graph(graph), s).cost if computed else 0
        )
        try:
            exact = optimal_pebbling_cost(graph, s)
        except PebblingError:
            exact = None
        for result in combined.results:
            assert result.ok, result.error
            assert result.value <= replay, (
                f"{result.engine} claims {result.value} > replay {replay} "
                f"at S={s} on edges {sorted(graph.edges)}"
            )
            if exact is not None:
                assert result.value <= exact, (
                    f"{result.engine} claims {result.value} > exact {exact} "
                    f"at S={s} on edges {sorted(graph.edges)}"
                )


class TestTightnessIntegration:
    def test_rows_carry_engine_bounds_and_winner(self):
        from repro.schedule.tightness import audit_kernel

        (row,) = audit_kernel("gemm", s_values=(18,))
        assert row.ok
        assert set(row.engine_bounds) == {"kkt", "spectral", "visit"}
        assert row.winning_engine in row.engine_bounds
        finite = [v for v in row.engine_bounds.values() if math.isfinite(v)]
        assert row.bound_value == max(finite)

    def test_engine_restriction(self):
        from repro.schedule.tightness import audit_kernel

        (row,) = audit_kernel("gemm", s_values=(18,), bounds_engines=("kkt",))
        assert set(row.engine_bounds) == {"kkt"}
        assert row.winning_engine == "kkt"

    def test_unknown_engine_rejected_up_front(self):
        from repro.schedule.tightness import audit_kernel

        with pytest.raises(KeyError, match="unknown bound engine"):
            audit_kernel("gemm", s_values=(18,), bounds_engines=("bogus",))


class TestCli:
    def test_bounds_json(self, capsys):
        assert main(["bounds", "gemm", "--s", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"] == "bounds"
        point = payload["points"][0]
        engines = {entry["engine"] for entry in point["engines"]}
        assert engines == {"kkt", "spectral", "visit"}

    def test_bounds_text_marks_the_winner(self, capsys):
        assert main(["bounds", "gemm", "--s", "8"]) == 0
        out = capsys.readouterr().out
        assert "certified" in out
        assert "winner:" in out

    def test_bounds_unknown_engine_is_a_usage_error(self, capsys):
        assert main(["bounds", "gemm", "--engines", "bogus"]) == 2
        assert "unknown bound engine" in capsys.readouterr().err

    def test_tightness_engine_flag(self, capsys):
        assert main(
            ["tightness", "gemm", "--s", "18", "--bounds-engines", "kkt",
             "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        row = payload["rows"][0]
        assert list(row["engine_bounds"]) == ["kkt"]
        assert row["winning_engine"] == "kkt"


class TestService:
    def test_post_bounds_roundtrip(self):
        from repro.service.client import ServiceClient, ServiceError
        from repro.service.core import ServiceConfig
        from repro.service.http import ServiceThread

        with ServiceThread(ServiceConfig(workers=1)) as daemon:
            client = ServiceClient(port=daemon.port)
            record = client.bounds("gemm", s_values=[8])
            assert record.ok
            payload = record.result
            assert payload["report"] == "bounds"
            assert payload["kernel"] == "gemm"
            point = payload["points"][0]
            values = [
                entry["value"] for entry in point["engines"]
                if entry["error"] is None
            ]
            assert point["certified"] == max(values)
            # an identical repeat is served from the report cache,
            # bit-identical
            again = client.bounds("gemm", s_values=[8])
            assert again.result["points"] == payload["points"]
            health = client.healthz()
            assert health.bounds["evals"].get("kkt", 0) >= 1
            assert health.bounds["kernels"]["gemm"]["winning_engine"]
            prometheus = client.metrics_prometheus()
            assert 'service_bound_engine_evals_total{engine="kkt"}' in prometheus
            with pytest.raises(ServiceError) as err:
                client.bounds("gemm", engines=["bogus"])
            assert err.value.status == 400
            with pytest.raises(ServiceError) as err:
                client.bounds("no-such-kernel")
            assert err.value.status == 404
