"""CLI and reporting-layer tests."""

import pytest

from repro.cli import main
from repro.reporting.experiments import experiments_markdown
from repro.reporting.table import render_table2, table2_json, table2_rows


class TestReporting:
    def test_rows_for_selected_kernels(self):
        rows = table2_rows(names=["gemm", "atax"])
        assert [r.kernel for r in rows] == ["gemm", "atax"]
        assert all(r.shape_matches for r in rows)

    def test_render_markdown(self):
        rows = table2_rows(names=["gemm"])
        text = render_table2(rows)
        assert "| gemm |" in text and "2*N**3/sqrt(S)" in text

    def test_table2_json_report(self):
        rows = table2_rows(names=["gemm", "atax"])
        payload = table2_json(rows, jobs=2, elapsed=1.5)
        assert [k["kernel"] for k in payload["kernels"]] == ["gemm", "atax"]
        assert payload["kernels"][0]["ours"] == "2*N**3/sqrt(S)"
        assert payload["summary"]["total"] == 2
        assert payload["summary"]["jobs"] == 2
        assert payload["summary"]["elapsed_seconds"] == 1.5

    def test_rows_carry_engine_timings(self):
        rows = table2_rows(names=["gemm"])
        assert rows[0].seconds > 0

    def test_experiments_markdown_sections(self):
        rows = table2_rows(names=["gemm", "lulesh"])
        text = experiments_markdown(rows)
        assert "## Polybench" in text
        assert "## LULESH" in text
        assert "Summary:" in text


class TestCLI:
    def test_kernel_command(self, capsys):
        assert main(["kernel", "gemm"]) == 0
        out = capsys.readouterr().out
        assert "2*N**3/sqrt(S)" in out
        assert "rho = sqrt(S)/2" in out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "gemm" in out and "lulesh" in out

    def test_analyze_python_file(self, tmp_path, capsys):
        path = tmp_path / "mm.py"
        path.write_text(
            "for i in range(N):\n"
            "    for j in range(N):\n"
            "        for k in range(N):\n"
            "            C[i, j] += A[i, k] * B[k, j]\n"
        )
        assert main(["analyze", str(path)]) == 0
        assert "2*N**3/sqrt(S)" in capsys.readouterr().out

    def test_analyze_c_file_by_suffix(self, tmp_path, capsys):
        path = tmp_path / "mm.c"
        path.write_text(
            "for (int i = 0; i < N; i++)\n"
            "  for (int j = 0; j < N; j++)\n"
            "    for (int k = 0; k < N; k++)\n"
            "      C[i][j] += A[i][k] * B[k][j];\n"
        )
        assert main(["analyze", str(path)]) == 0
        assert "2*N**3/sqrt(S)" in capsys.readouterr().out

    def test_validate_command(self, capsys):
        code = main(["validate", "gemm", "--params", "N=2", "--S", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sound         : True" in out

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_json_reports_carry_version_header(self, capsys):
        import json

        from repro import __version__

        assert main(["kernel", "gemm", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == __version__
        assert payload["generator"] == "repro"
        assert payload["report"] == "kernel"

    def test_table2_json_carries_version_header(self):
        from repro import __version__

        rows = table2_rows(names=["gemm"])
        payload = table2_json(rows, jobs=1, elapsed=0.1)
        assert payload["version"] == __version__
        assert payload["report"] == "table2"


class TestCLIErrors:
    """Expected failures exit 2 with a one-line message, never a traceback."""

    def test_unknown_kernel_exits_nonzero(self, capsys):
        assert main(["kernel", "nope"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: unknown kernel 'nope'")
        assert err.count("\n") == 1

    def test_unknown_validate_kernel_exits_nonzero(self, capsys):
        assert main(["validate", "nope"]) == 2
        assert "unknown kernel" in capsys.readouterr().err

    def test_bad_validate_params_exit_nonzero(self, capsys):
        assert main(["validate", "gemm", "--params", "N"]) == 2
        assert "expected NAME=INTEGER" in capsys.readouterr().err

    def test_unparsable_source_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "broken.py"
        path.write_text("for i in range(N:\n    pass\n")
        assert main(["analyze", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1

    def test_missing_source_file_exits_nonzero(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "absent.py")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_submit_without_daemon_exits_nonzero(self, capsys):
        assert main(["submit", "gemm", "--port", "1"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "daemon" in err
