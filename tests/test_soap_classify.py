"""Simple-overlap classification tests (Section 3 structure recovery)."""

import pytest

from repro.ir.access import AffineIndex
from repro.kernels.common import ref, stmt
from repro.soap.classify import check_soap, classify_access, classify_statement
from repro.soap.projections import apply_versioning
from repro.util.errors import NotSoapError


class TestClassifyAccess:
    def test_single_component_no_offsets(self):
        groups = classify_access(ref("A", "i,k"))
        assert len(groups) == 1
        assert [d.offsets for d in groups[0].dims] == [0, 0]
        assert [d.var for d in groups[0].dims] == ["i", "k"]

    def test_stencil_offsets(self):
        groups = classify_access(ref("A", "i-1,t", "i,t", "i+1,t"))
        (group,) = groups
        assert [d.offsets for d in group.dims] == [2, 0]

    def test_offset_count_independent_of_base(self):
        # {i, i+1, i+3} -> 2 non-zero translations whichever base is chosen.
        groups = classify_access(ref("A", "i", "i+1", "i+3"))
        assert groups[0].dims[0].offsets == 2

    def test_distinct_signatures_split(self):
        groups = classify_access(ref("A", "i,k", "k,j"))
        assert len(groups) == 2

    def test_output_component_joins_matching_group(self):
        out = ref("A", "i,t+1").components[0]
        groups = classify_access(ref("A", "i-1,t", "i,t", "i+1,t"), out)
        (group,) = groups
        assert group.includes_output
        assert [d.offsets for d in group.dims] == [2, 1]

    def test_output_component_different_signature(self):
        out = ref("A", "k,k").components[0]
        groups = classify_access(ref("A", "i,j"), out)
        flags = {g.includes_output for g in groups}
        assert flags == {True, False}

    def test_constant_dimension(self):
        groups = classify_access(ref("A", "0,j", "1,j"))
        (group,) = groups
        assert group.dims[0].var is None
        assert group.dims[0].offsets == 1

    def test_non_injective_dimension_marks_free_vars(self):
        groups = classify_access(ref("Img", "r+w,c"))
        dim = groups[0].dims[0]
        assert set((dim.var,) + dim.free_vars) == {"r", "w"}

    def test_variables_expand_version_components(self):
        from repro.symbolic.symbols import version_var_name

        vname = version_var_name(["k"])
        comp = (AffineIndex.var("i"), AffineIndex.var(vname))
        from repro.ir.access import ArrayAccess

        groups = classify_access(ArrayAccess("A", (comp,)))
        assert groups[0].variables == ("i", "k")


class TestClassifyStatement:
    def test_gemm_groups(self):
        gemm = stmt(
            "gemm",
            {"i": "N", "j": "N", "k": "N"},
            ref("C", "i,j"),
            ref("C", "i,j"),
            ref("A", "i,k"),
            ref("B", "k,j"),
        )
        groups = classify_statement(apply_versioning(gemm))
        by_array = {}
        for g in groups:
            by_array.setdefault(g.array, []).append(g)
        assert set(by_array) == {"A", "B", "C"}
        assert by_array["C"][0].includes_output

    def test_pure_output_creates_no_group(self):
        s = stmt("s", {"i": "N"}, ref("B", "i"), ref("A", "i"))
        groups = classify_statement(s)
        assert {g.array for g in groups} == {"A"}

    def test_check_soap_strict_rejects_multi_group(self):
        lu = stmt(
            "lu",
            {"k": "N", "i": "N", "j": "N"},
            ref("A", "i,j"),
            ref("A", "i,j", "i,k", "k,j"),
        )
        with pytest.raises(NotSoapError):
            check_soap(lu, allow_multi_group=False)
        check_soap(lu, allow_multi_group=True)  # lenient mode passes

    def test_check_soap_rejects_repeated_variable(self):
        s = stmt("s", {"i": "N"}, ref("B", "i"), ref("A", "i,i"))
        with pytest.raises(NotSoapError):
            check_soap(s)
